"""Tests for multi-input ops: where, maximum, concatenate, binarize_ste, ..."""

import numpy as np
import pytest

from repro.autograd import ops
from repro.autograd.tensor import Tensor


class TestWhere:
    def test_values(self):
        out = ops.where([True, False], Tensor([1.0, 2.0]), Tensor([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_grads_gate_correctly(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        ops.where([True, False], a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestMaxMin:
    def test_maximum_values_and_grads(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_maximum_tie_splits(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        ops.maximum(a, b).sum().backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(0.5)

    def test_minimum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        out = ops.minimum(a, b)
        np.testing.assert_allclose(out.data, [1.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])


class TestConcatenateStack:
    def test_concatenate_values(self):
        out = ops.concatenate([Tensor([1.0]), Tensor([2.0, 3.0])])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_concatenate_grads_split(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (ops.concatenate([a, b]) * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 1)), requires_grad=True)
        out = ops.concatenate([a, b], axis=1)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(b.grad, np.ones((2, 1)))

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = ops.stack([a, b])
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_outer(self):
        u = Tensor([1.0, 2.0], requires_grad=True)
        v = Tensor([3.0, 4.0, 5.0], requires_grad=True)
        out = ops.outer(u, v)
        np.testing.assert_allclose(out.data, np.outer(u.data, v.data))
        out.sum().backward()
        np.testing.assert_allclose(u.grad, [12.0, 12.0])
        np.testing.assert_allclose(v.grad, [3.0, 3.0, 3.0])

    def test_outer_rejects_matrices(self):
        with pytest.raises(ValueError):
            ops.outer(Tensor(np.ones((2, 2))), Tensor([1.0]))


class TestSymmetricFromUpper:
    def test_scatter_values(self):
        rows, cols = np.triu_indices(3, k=1)
        out = ops.symmetric_from_upper(Tensor([1.0, 2.0, 3.0]), 3, rows, cols)
        expected = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float)
        np.testing.assert_allclose(out.data, expected)

    def test_gradient_gathers_both_triangles(self):
        rows, cols = np.triu_indices(3, k=1)
        v = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        out = ops.symmetric_from_upper(v, 3, rows, cols)
        weight = np.arange(9.0).reshape(3, 3)
        (out * Tensor(weight)).sum().backward()
        expected = weight[rows, cols] + weight[cols, rows]
        np.testing.assert_allclose(v.grad, expected)

    def test_rejects_lower_triangle_indices(self):
        with pytest.raises(ValueError):
            ops.symmetric_from_upper(Tensor([1.0]), 3, np.array([2]), np.array([0]))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            ops.symmetric_from_upper(Tensor([1.0, 2.0]), 3, np.array([0]), np.array([1]))


class TestBinarizeSTE:
    def test_forward_sign_convention(self):
        out = ops.binarize_ste(Tensor([-0.5, 0.0, 0.5]))
        np.testing.assert_allclose(out.data, [-1.0, 1.0, 1.0])  # binarized(0) = +1

    def test_straight_through_gradient(self):
        x = Tensor([-0.5, 0.5], requires_grad=True)
        ops.binarize_ste(x).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_clipped_ste_blocks_outside(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        ops.binarize_ste(x, clip=1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_unclipped(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        ops.binarize_ste(x, clip=None).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_paper_z_mapping(self):
        """Ż >= 0.5  ⇒  Z = −binarized(2Ż−1) = −1 (flip)."""
        zdot = Tensor([0.0, 0.49, 0.5, 1.0])
        z = -ops.binarize_ste(2.0 * zdot - 1.0).data
        np.testing.assert_allclose(z, [1.0, 1.0, -1.0, -1.0])


class TestWrappers:
    def test_exp_log_log1p(self):
        np.testing.assert_allclose(ops.exp([0.0]).data, [1.0])
        np.testing.assert_allclose(ops.log([np.e]).data, [1.0])
        np.testing.assert_allclose(ops.log1p([0.0]).data, [0.0])


class TestApplyPairFlips:
    def _base(self):
        base = np.zeros((3, 3))
        base[0, 1] = base[1, 0] = 1.0
        return base

    def test_forward_toggles_pairs(self):
        base = self._base()
        rows, cols = np.array([0, 1]), np.array([1, 2])
        out = ops.apply_pair_flips(base, Tensor([1.0, 1.0]), rows, cols)
        expected = np.array([[0, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
        np.testing.assert_allclose(out.data, expected)

    def test_matches_unfused_composition(self):
        base = self._base()
        rows, cols = np.triu_indices(3, k=1)
        values = Tensor([0.25, 1.0, 0.0], requires_grad=True)
        fused = ops.apply_pair_flips(base, values, rows, cols)
        unfused = (
            Tensor(base)
            + Tensor(1.0 - 2.0 * base) * ops.symmetric_from_upper(values, 3, rows, cols)
        )
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_gradient_matches_unfused_composition(self):
        base = self._base()
        rows, cols = np.triu_indices(3, k=1)
        weight = np.arange(9.0).reshape(3, 3)

        v1 = Tensor([0.25, 1.0, 0.5], requires_grad=True)
        (ops.apply_pair_flips(base, v1, rows, cols) * Tensor(weight)).sum().backward()

        v2 = Tensor([0.25, 1.0, 0.5], requires_grad=True)
        unfused = Tensor(base) + Tensor(1.0 - 2.0 * base) * ops.symmetric_from_upper(
            v2, 3, rows, cols
        )
        (unfused * Tensor(weight)).sum().backward()

        np.testing.assert_array_equal(v1.grad, v2.grad)

    def test_off_candidate_entries_untouched(self):
        base = self._base()
        out = ops.apply_pair_flips(base, Tensor([1.0]), np.array([1]), np.array([2]))
        assert out.data[0, 1] == base[0, 1]
        assert out.data[1, 0] == base[1, 0]

    def test_rejects_lower_triangle_indices(self):
        with pytest.raises(ValueError):
            ops.apply_pair_flips(
                np.zeros((3, 3)), Tensor([1.0]), np.array([2]), np.array([0])
            )

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            ops.apply_pair_flips(
                np.zeros((3, 3)), Tensor([1.0, 2.0]), np.array([0]), np.array([1])
            )

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            ops.apply_pair_flips(
                np.zeros((3, 3)), Tensor([1.0]), np.array([-1]), np.array([2])
            )

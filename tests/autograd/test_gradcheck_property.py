"""Property-based gradient verification: every primitive against finite
differences on random inputs (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import ops
from repro.autograd.gradcheck import gradcheck


def arrays(draw, shape, low=-2.0, high=2.0):
    values = draw(
        st.lists(
            st.floats(min_value=low, max_value=high, allow_nan=False),
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    return np.array(values).reshape(shape)


@st.composite
def matrix_pair(draw):
    rows = draw(st.integers(1, 4))
    inner = draw(st.integers(1, 4))
    cols = draw(st.integers(1, 4))
    return arrays(draw, (rows, inner)), arrays(draw, (inner, cols))


@st.composite
def positive_vector(draw):
    size = draw(st.integers(1, 6))
    return arrays(draw, (size,), low=0.1, high=3.0)


@st.composite
def vector_pair(draw):
    size = draw(st.integers(1, 6))
    return arrays(draw, (size,)), arrays(draw, (size,))


class TestPrimitiveGradients:
    @settings(max_examples=25, deadline=None)
    @given(matrix_pair())
    def test_matmul(self, pair):
        a, b = pair
        assert gradcheck(lambda x, y: x @ y, [a, b])

    @settings(max_examples=25, deadline=None)
    @given(vector_pair())
    def test_add_mul_chain(self, pair):
        a, b = pair
        assert gradcheck(lambda x, y: (x + y) * (x - y) + x * 2.0, [a, b])

    @settings(max_examples=25, deadline=None)
    @given(positive_vector())
    def test_log_exp_sqrt(self, v):
        assert gradcheck(lambda x: (x.log() + x.sqrt()).exp(), [v])

    @settings(max_examples=25, deadline=None)
    @given(positive_vector())
    def test_division_and_pow(self, v):
        assert gradcheck(lambda x: (1.0 / x + x**1.5).sum(), [v])

    @settings(max_examples=20, deadline=None)
    @given(vector_pair())
    def test_sigmoid_tanh(self, pair):
        a, _ = pair
        assert gradcheck(lambda x: x.sigmoid() + x.tanh(), [a])

    @settings(max_examples=20, deadline=None)
    @given(vector_pair())
    def test_where_combination(self, pair):
        a, b = pair
        mask = a > b  # constant w.r.t. differentiation
        assert gradcheck(lambda x, y: ops.where(mask, x * 2.0, y * 3.0), [a, b])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 5))
    def test_symmetric_scatter_composition(self, n):
        rows, cols = np.triu_indices(n, k=1)
        vec = np.linspace(0.1, 0.9, len(rows))

        def fn(v):
            m = ops.symmetric_from_upper(v, n, rows, cols)
            return ((m @ m) * m).sum(axis=1).sum()

        assert gradcheck(fn, [vec])


class TestReductionGradients:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_sum_axes(self, r, c):
        x = np.linspace(-1, 1, r * c).reshape(r, c)
        assert gradcheck(lambda t: t.sum(axis=0), [x])
        assert gradcheck(lambda t: t.sum(axis=1, keepdims=True), [x])
        assert gradcheck(lambda t: t.mean(), [x])

    def test_max_away_from_ties(self):
        x = np.array([[1.0, 5.0, 2.0], [0.5, -1.0, 4.0]])
        assert gradcheck(lambda t: t.max(axis=1), [x])


class TestSurrogateShapedExpressions:
    """Gradcheck for expression shapes that appear in the attack objective."""

    def test_closed_form_ols(self):
        rng = np.random.default_rng(0)
        log_n = rng.uniform(0.5, 2.0, size=8)
        log_e = rng.uniform(0.5, 3.0, size=8)

        def fn(x, y):
            count = float(x.size)
            sum_x, sum_xx = x.sum(), (x * x).sum()
            sum_y, sum_xy = y.sum(), (x * y).sum()
            det = (sum_xx + 1e-8) * (count + 1e-8) - sum_x * sum_x
            beta0 = ((sum_xx + 1e-8) * sum_y - sum_x * sum_xy) / det
            beta1 = (sum_xy * (count + 1e-8) - sum_x * sum_y) / det
            return ((y - beta0 - beta1 * x) ** 2).sum()

        assert gradcheck(fn, [log_n, log_e])

    def test_triangle_diag_formula(self):
        rng = np.random.default_rng(1)
        raw = rng.random((5, 5))
        sym = (raw + raw.T) / 2.0
        np.fill_diagonal(sym, 0.0)
        assert gradcheck(lambda a: ((a @ a) * a).sum(axis=1), [sym], atol=1e-3, rtol=1e-3)


class TestGradcheckSelfTest:
    def test_detects_wrong_gradient(self):
        """A deliberately wrong backward must be caught."""

        def broken(x):
            # forward x**2 but gradient of x**3 would be wrong; emulate by
            # comparing analytic grad of x**3 against numeric of x**2 via a
            # mismatched wrapper: gradcheck computes both from the same fn,
            # so instead check that mismatched tolerance trips on noise.
            return x**2

        x = np.array([1.0, 2.0])
        assert gradcheck(broken, [x])
        with pytest.raises(AssertionError):
            # absurd eps makes the numeric estimate diverge from analytic
            gradcheck(lambda t: (t**3).sum(), [np.array([50.0])], eps=10.0, atol=1e-8, rtol=1e-8)

"""Tests for composite losses and activations."""

import numpy as np
import pytest

from repro.autograd import functional as F
from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor


class TestMSE:
    def test_value(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_sum_reduction(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]), reduction="sum")
        assert loss.item() == pytest.approx(5.0)

    def test_none_reduction(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]), reduction="none")
        np.testing.assert_allclose(loss.data, [1.0, 4.0])

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            F.mse_loss(Tensor([1.0]), Tensor([0.0]), reduction="bogus")

    def test_gradient(self):
        assert gradcheck(lambda p: F.mse_loss(p, Tensor([1.0, -1.0])), [np.array([0.3, 0.7])])


class TestL1Penalty:
    def test_value(self):
        assert F.l1_penalty(Tensor([-1.0, 2.0, -3.0])).item() == pytest.approx(6.0)

    def test_gradient_signs(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        F.l1_penalty(x).backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])


class TestSoftmaxFamily:
    def test_log_softmax_normalises(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]))
        probs = F.log_softmax(logits).exp().data
        assert probs.sum() == pytest.approx(1.0)

    def test_log_softmax_stable_for_huge_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0]]))
        out = F.log_softmax(logits).data
        assert np.isfinite(out).all()

    def test_softmax_matches_numpy(self):
        x = np.array([[0.5, -1.0, 2.0]])
        expected = np.exp(x) / np.exp(x).sum()
        np.testing.assert_allclose(F.softmax(Tensor(x)).data, expected, atol=1e-12)

    def test_nll_loss_picks_targets(self):
        log_probs = F.log_softmax(Tensor(np.array([[2.0, 0.0], [0.0, 2.0]])))
        loss = F.nll_loss(log_probs, [0, 1])
        assert loss.item() == pytest.approx(-np.log(np.exp(2) / (np.exp(2) + 1)))

    def test_nll_loss_shape_check(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor([0.0, 1.0]), [0])


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = np.array([0.5, -1.0, 3.0])
        targets = np.array([1.0, 0.0, 1.0])
        expected = np.mean(
            np.maximum(logits, 0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
        )
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), Tensor(targets))
        assert loss.item() == pytest.approx(expected)

    def test_stable_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), Tensor([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_gradient(self):
        targets = Tensor([1.0, 0.0])
        assert gradcheck(
            lambda z: F.binary_cross_entropy_with_logits(z, targets),
            [np.array([0.3, -0.4])],
        )


class TestMarginRankingLoss:
    def test_zero_when_margin_satisfied(self):
        loss = F.margin_ranking_loss(Tensor([5.0]), Tensor([1.0]), Tensor([1.0]))
        assert loss.item() == 0.0

    def test_linear_when_violated(self):
        loss = F.margin_ranking_loss(Tensor([1.0]), Tensor([2.0]), Tensor([0.5]))
        assert loss.item() == pytest.approx(1.5)

    def test_vector_margins(self):
        loss = F.margin_ranking_loss(
            Tensor([1.0, 5.0]), Tensor([1.0, 1.0]), Tensor([0.5, 0.5]), reduction="none"
        )
        np.testing.assert_allclose(loss.data, [0.5, 0.0])


class TestHelpers:
    def test_one_hot(self):
        out = F.one_hot([0, 2, 1], 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_range_check(self):
        with pytest.raises(ValueError):
            F.one_hot([3], 3)

    def test_dropout_mask_scale(self):
        rng = np.random.default_rng(0)
        mask = F.dropout_mask((10000,), 0.25, rng)
        kept = mask > 0
        assert kept.mean() == pytest.approx(0.75, abs=0.02)
        assert mask[kept][0] == pytest.approx(1.0 / 0.75)

    def test_dropout_mask_rejects_bad_p(self):
        with pytest.raises(ValueError):
            F.dropout_mask((2,), 1.0, np.random.default_rng(0))

    def test_pairwise_squared_distances(self):
        x = Tensor(np.array([[0.0, 0.0], [3.0, 4.0]]))
        d = F.pairwise_squared_distances(x).data
        assert d[0, 1] == pytest.approx(25.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_masked_mean(self):
        values = Tensor([1.0, 2.0, 3.0])
        assert F.masked_mean(values, [True, False, True]).item() == pytest.approx(2.0)

    def test_masked_mean_empty_raises(self):
        with pytest.raises(ValueError):
            F.masked_mean(Tensor([1.0]), [False])

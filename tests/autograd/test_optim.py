"""Tests for the optimisers."""

import numpy as np
import pytest

from repro.autograd import optim
from repro.autograd.tensor import Tensor


def _quadratic_loss(parameter: Tensor) -> Tensor:
    # minimum at (1, -2)
    target = Tensor(np.array([1.0, -2.0]))
    difference = parameter - target
    return (difference * difference).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor(np.zeros(2), requires_grad=True)
            opt = optim.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                _quadratic_loss(p).backward()
                opt.step()
            return float(_quadratic_loss(p).data)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = optim.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        optim.SGD([p], lr=0.1).step()  # no backward happened
        assert p.data[0] == 1.0

    def test_rejects_bad_lr(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            optim.SGD([p], lr=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)

    def test_rejects_non_grad_tensor(self):
        with pytest.raises(ValueError):
            optim.SGD([Tensor(np.ones(2))], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.array([5.0, 5.0]), requires_grad=True)
        opt = optim.Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            _quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0], atol=1e-3)

    def test_bias_correction_first_step_scale(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = optim.Adam([p], lr=0.1)
        opt.zero_grad()
        (p * 3.0).sum().backward()
        opt.step()
        # First Adam step is ≈ lr * sign(grad) regardless of magnitude.
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)


class TestProjectedGradientDescent:
    def test_projects_into_box(self):
        p = Tensor(np.array([0.05, 0.95]), requires_grad=True)
        opt = optim.ProjectedGradientDescent([p], lr=1.0, low=0.0, high=1.0)
        opt.zero_grad()
        (p * Tensor(np.array([1.0, -1.0]))).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data, [0.0, 1.0])

    def test_interior_step_unaffected(self):
        p = Tensor(np.array([0.5]), requires_grad=True)
        opt = optim.ProjectedGradientDescent([p], lr=0.1)
        opt.zero_grad()
        p.sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(0.4)

    def test_rejects_bad_box(self):
        p = Tensor(np.array([0.5]), requires_grad=True)
        with pytest.raises(ValueError):
            optim.ProjectedGradientDescent([p], lr=0.1, low=1.0, high=0.0)

"""Fingerprint alias table: a store-backed campaign and a payload-backed
campaign of the *same graph* carry different checkpoint fingerprints (O(1)
content-address token vs hashed coo arrays); the alias table recorded at
build time makes their checkpoints resume each other in both directions."""

import json

import pytest

from repro.attacks import AttackCampaign, ParallelCampaignExecutor, grid_jobs
from repro.attacks.campaign import checkpoint_aliases, graph_fingerprint
from repro.store import (
    ALIAS_TABLE_NAME,
    alias_fingerprints,
    alias_table_path,
    build_store,
    record_alias_group,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    cache = tmp_path_factory.mktemp("alias-store-cache")
    return build_store("blogcatalog", cache_dir=cache, scale=0.25, seed=5)


def _sweep_jobs(store, count=5, budget=2):
    return grid_jobs(
        "gradmaxsearch", [[int(t)] for t in store.top_targets(count)],
        budgets=[budget], candidates="target_incident",
    )


class TestAliasTable:
    def test_record_and_lookup(self, tmp_path):
        record_alias_group({"fp-a", "fp-b"}, cache_dir=tmp_path)
        assert alias_fingerprints("fp-a", cache_dir=tmp_path) == {"fp-b"}
        assert alias_fingerprints("fp-b", cache_dir=tmp_path) == {"fp-a"}
        assert alias_fingerprints("fp-c", cache_dir=tmp_path) == frozenset()

    def test_intersecting_groups_union_merge(self, tmp_path):
        record_alias_group({"fp-a", "fp-b"}, cache_dir=tmp_path)
        record_alias_group({"fp-b", "fp-c"}, cache_dir=tmp_path)
        assert alias_fingerprints("fp-a", cache_dir=tmp_path) == {"fp-b", "fp-c"}
        table = json.loads(alias_table_path(tmp_path).read_text())
        assert table["version"] == 1
        assert table["groups"] == [["fp-a", "fp-b", "fp-c"]]

    def test_disjoint_groups_stay_separate(self, tmp_path):
        record_alias_group({"fp-a", "fp-b"}, cache_dir=tmp_path)
        record_alias_group({"fp-x", "fp-y"}, cache_dir=tmp_path)
        assert alias_fingerprints("fp-a", cache_dir=tmp_path) == {"fp-b"}
        assert alias_fingerprints("fp-x", cache_dir=tmp_path) == {"fp-y"}

    def test_recording_is_idempotent(self, tmp_path):
        record_alias_group({"fp-a", "fp-b"}, cache_dir=tmp_path)
        before = alias_table_path(tmp_path).read_text()
        record_alias_group({"fp-b", "fp-a"}, cache_dir=tmp_path)
        assert alias_table_path(tmp_path).read_text() == before

    def test_fewer_than_two_distinct_fingerprints_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="two distinct"):
            record_alias_group({"fp-a", "fp-a"}, cache_dir=tmp_path)

    def test_corrupt_table_is_ignored_not_fatal(self, tmp_path):
        path = alias_table_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"version": 1, "groups": [["fp-a",')  # torn write
        assert alias_fingerprints("fp-a", cache_dir=tmp_path) == frozenset()
        # recording over the wreck heals the table
        record_alias_group({"fp-a", "fp-b"}, cache_dir=tmp_path)
        assert alias_fingerprints("fp-a", cache_dir=tmp_path) == {"fp-b"}

    def test_unsupported_version_is_ignored(self, tmp_path):
        path = alias_table_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"version": 99, "groups": [["a", "b"]]}))
        assert alias_fingerprints("a", cache_dir=tmp_path) == frozenset()

    def test_default_cache_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_CACHE", str(tmp_path))
        record_alias_group({"fp-a", "fp-b"})
        assert (tmp_path / ALIAS_TABLE_NAME).exists()
        assert alias_fingerprints("fp-a") == {"fp-b"}


class TestStoreRegistration:
    def test_build_store_records_token_payload_group(self, store):
        table = store.path.parent / ALIAS_TABLE_NAME
        assert table.exists()
        token_fp = graph_fingerprint(store.csr(), "sparse")
        payload_fp = store.payload_fingerprint()
        assert token_fp != payload_fp  # the whole reason the table exists
        assert alias_fingerprints(
            token_fp, cache_dir=store.path.parent
        ) == {payload_fp}

    def test_payload_fingerprint_is_cached_in_a_sidecar(self, store):
        sidecar = store.path / "payload-fingerprint.json"
        first = store.payload_fingerprint()
        assert sidecar.exists()
        assert json.loads(sidecar.read_text())["fingerprint"] == first
        assert store.payload_fingerprint() == first  # cache hit path
        assert first == graph_fingerprint(store.detached_csr(), "sparse")

    def test_checkpoint_aliases_for_tagged_store_matrix(self, store):
        token_csr = store.csr()  # tagged with _repro_store_path
        token_fp = graph_fingerprint(token_csr, "sparse")
        assert checkpoint_aliases(token_csr, token_fp) == {
            store.payload_fingerprint()
        }

    def test_checkpoint_aliases_for_untagged_payload_matrix(
        self, store, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_CACHE", str(store.path.parent))
        payload = store.detached_csr()  # no store tags at all
        payload_fp = graph_fingerprint(payload, "sparse")
        token_fp = graph_fingerprint(store.csr(), "sparse")
        assert checkpoint_aliases(payload, payload_fp) == {token_fp}


class TestCrossBackingResume:
    def test_payload_campaign_resumes_store_checkpoint(
        self, store, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_CACHE", str(store.path.parent))
        jobs = _sweep_jobs(store)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(
            store.csr(), backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        resumed = AttackCampaign(
            store.detached_csr(), backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == len(jobs)

    def test_store_campaign_resumes_payload_checkpoint(
        self, store, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_CACHE", str(store.path.parent))
        jobs = _sweep_jobs(store)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(
            store.detached_csr(), backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        resumed = AttackCampaign(
            store.csr(), backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == len(jobs)

    def test_store_executor_resumes_payload_checkpoint(
        self, store, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_CACHE", str(store.path.parent))
        jobs = _sweep_jobs(store)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(
            store.detached_csr(), backend="sparse", checkpoint_path=checkpoint
        ).run(jobs[:3])
        resumed = ParallelCampaignExecutor(
            store, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 3

    def test_without_the_table_resume_still_refuses(
        self, store, tmp_path, monkeypatch
    ):
        """The table is an affordance, not load-bearing: removing it
        restores the strict pre-alias behaviour instead of mis-resuming."""
        monkeypatch.setenv("REPRO_STORE_CACHE", str(tmp_path / "empty-cache"))
        jobs = _sweep_jobs(store, count=2)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(
            store.csr(), backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        table = store.path.parent / ALIAS_TABLE_NAME
        saved = table.read_text()
        table.unlink()
        try:
            with pytest.raises(ValueError, match="different"):
                AttackCampaign(
                    store.detached_csr(), backend="sparse",
                    checkpoint_path=checkpoint,
                ).run(jobs)
        finally:
            table.write_text(saved)

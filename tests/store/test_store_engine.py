"""Store-backed engines: bit-identical to in-memory engines, and the mmap
is never touched — flips live entirely in the Δ-overlay/override rows.

The no-write contract is enforced by the :func:`assert_readonly_mmap` runtime
guard (writability check on entry, checksum comparison on exit), not just by
after-the-fact array comparison."""

import numpy as np
import pytest

from repro.analysis import assert_readonly_mmap
from repro.attacks import BinarizedAttack, GradMaxSearch
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.oddball.surrogate import SurrogateEngine
from repro.store import build_store


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    cache = tmp_path_factory.mktemp("engine-store-cache")
    return build_store("wikivote", cache_dir=cache, scale=0.3, seed=5)


@pytest.fixture(scope="module")
def memory_graph(store):
    return store.detached_csr()


def top_targets(store, k=3):
    order = np.argsort(-store.degrees(), kind="stable")
    return [int(v) for v in order[:k]]


class TestEngineParity:
    def test_losses_bit_identical(self, store, memory_graph):
        targets = top_targets(store)
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        on_store = SurrogateEngine.create(store, targets, empty, backend="sparse")
        in_memory = SurrogateEngine.create(
            memory_graph, targets, empty, backend="sparse"
        )
        assert on_store.current_loss() == in_memory.current_loss()
        for u, v in [(0, 5), (1, 9), (0, 5)]:
            on_store.push_flip(u, v)
            in_memory.push_flip(u, v)
            assert on_store.current_loss() == in_memory.current_loss()
        on_store.pop_flips(3)
        in_memory.pop_flips(3)
        assert on_store.current_loss() == in_memory.current_loss()

    def test_candidate_gradient_identical(self, store, memory_graph):
        targets = top_targets(store)
        from repro.attacks.candidates import CandidateSet

        cs = CandidateSet.target_incident(store.number_of_nodes, targets)
        on_store = SurrogateEngine.create(store, targets, cs, backend="sparse")
        in_memory = SurrogateEngine.create(memory_graph, targets, cs, backend="sparse")
        assert np.array_equal(
            on_store.candidate_gradient(), in_memory.candidate_gradient()
        )

    @pytest.mark.parametrize("attack_cls", [GradMaxSearch, BinarizedAttack])
    def test_attack_flips_identical(self, store, memory_graph, attack_cls):
        targets = top_targets(store)
        kwargs = {"iterations": 30} if attack_cls is BinarizedAttack else {}
        with assert_readonly_mmap(store, context="store-backed attack"):
            a = attack_cls(backend="sparse", **kwargs).attack(
                store.csr(), targets, budget=4, candidates="target_incident"
            )
        b = attack_cls(backend="sparse", **kwargs).attack(
            memory_graph, targets, budget=4, candidates="target_incident"
        )
        assert a.flips() == b.flips()
        assert a.surrogate_by_budget == b.surrogate_by_budget

    def test_dense_engine_densifies_store(self, store):
        targets = top_targets(store)
        dense = SurrogateEngine.create(store, targets, backend="dense")
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        sparse_engine = SurrogateEngine.create(store, targets, empty, backend="sparse")
        assert dense.current_loss() == pytest.approx(
            sparse_engine.current_loss(), rel=0, abs=0
        )


class TestMmapNeverWritten:
    def test_attack_leaves_mmap_untouched(self, store):
        csr = store.csr()
        before = (
            np.array(csr.data), np.array(csr.indices), np.array(csr.indptr)
        )
        targets = top_targets(store)
        with assert_readonly_mmap(store, context="gradmax over store"):
            GradMaxSearch(backend="sparse").attack(
                store, targets, budget=5, candidates="adaptive"
            )
        assert np.array_equal(before[0], np.asarray(csr.data))
        assert np.array_equal(before[1], np.asarray(csr.indices))
        assert np.array_equal(before[2], np.asarray(csr.indptr))
        for array in (csr.data, csr.indices, csr.indptr):
            assert not array.flags.writeable


class TestLazyNeighbourRows:
    def test_no_rows_materialised_on_construction(self, store):
        features = IncrementalEgonetFeatures(store)
        assert features._rows == {}

    def test_only_touched_rows_materialise(self, store):
        features = IncrementalEgonetFeatures(store)
        features.flip(0, 5)
        features.flip(1, 9)
        assert set(features._rows) == {0, 5, 1, 9}
        # reads do not materialise
        features.neighbors(20)
        assert features.is_edge(21, 22) in (True, False)
        assert 20 not in features._rows and 21 not in features._rows

    def test_precomputed_features_consumed(self, store):
        features = IncrementalEgonetFeatures(store)
        n_mm, e_mm = store.features()
        assert np.array_equal(features.n_feature, np.asarray(n_mm))
        assert np.array_equal(features.e_feature, np.asarray(e_mm))
        # and they are private copies: flips must not touch the store
        features.flip(0, 5)
        features.rollback(1)
        assert np.array_equal(features.n_feature, np.asarray(n_mm))

    def test_queries_match_dense_reference(self, store):
        features = IncrementalEgonetFeatures(store)
        dense = store.csr().toarray()
        rng = np.random.default_rng(0)
        nodes = rng.integers(0, store.number_of_nodes, size=20)
        for u in nodes:
            u = int(u)
            assert features.degree(u) == int(dense[u].sum())
            assert features.neighbors(u) == set(np.flatnonzero(dense[u]).tolist())
        for u, v in zip(nodes[:10], nodes[10:]):
            u, v = int(u), int(v)
            if u != v:
                assert features.is_edge(u, v) == bool(dense[u, v])

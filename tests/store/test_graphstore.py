"""GraphStore fundamentals: content-addressed builds, manifest integrity,
mmap read-only discipline, and zero-copy handoff into the sparse pipeline."""

import json

import numpy as np
import pytest

from repro.graph.sparse import egonet_features_sparse, to_sparse
from repro.store import (
    GraphStore,
    STORE_RECIPES,
    build_store,
    recipe_hash,
    store_recipe,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    cache = tmp_path_factory.mktemp("store-cache")
    return build_store("blogcatalog", cache_dir=cache, scale=0.3, seed=7)


class TestBuild:
    def test_manifest_fields(self, store):
        manifest = json.loads((store.path / "manifest.json").read_text())
        assert manifest["version"] == 1
        assert manifest["n_nodes"] == store.number_of_nodes
        assert manifest["nnz"] == 2 * store.number_of_edges
        assert manifest["recipe_hash"] == store.digest
        assert manifest["recipe"]["seed"] == 7
        assert set(manifest["planted"]) == {"cliques", "stars"}
        assert manifest["planted"]["cliques"]  # ground truth survives

    def test_content_addressed_directory(self, store):
        recipe = store_recipe("blogcatalog", scale=0.3, seed=7)
        assert recipe_hash(recipe)[:12] in store.path.name

    def test_rebuild_is_cache_hit(self, store):
        again = build_store(
            "blogcatalog", cache_dir=store.path.parent, scale=0.3, seed=7
        )
        assert again.path == store.path
        assert again.digest == store.digest

    def test_different_seed_different_address(self, store, tmp_path):
        other = build_store("blogcatalog", cache_dir=tmp_path, scale=0.3, seed=8)
        assert other.digest != store.digest
        assert other.path.name != store.path.name

    def test_chunk_size_is_part_of_the_recipe(self):
        # chunking shapes the RNG draw sequence, so it must re-address
        a = store_recipe("er", scale=0.2, seed=1, chunk_edges=1000)
        b = store_recipe("er", scale=0.2, seed=1, chunk_edges=2000)
        assert recipe_hash(a) != recipe_hash(b)

    def test_build_is_deterministic(self, store, tmp_path):
        rebuilt = build_store("blogcatalog", cache_dir=tmp_path, scale=0.3, seed=7)
        assert rebuilt.digest == store.digest
        assert np.array_equal(
            np.asarray(rebuilt.csr().indices), np.asarray(store.csr().indices)
        )
        assert np.array_equal(
            np.asarray(rebuilt.csr().indptr), np.asarray(store.csr().indptr)
        )

    def test_edge_target_hit(self, store):
        target = store.recipe["edges"]
        assert abs(store.number_of_edges - target) <= 0.02 * target

    def test_every_recipe_builds_small(self, tmp_path):
        for name in STORE_RECIPES:
            built = build_store(name, cache_dir=tmp_path, scale=0.08, seed=3)
            GraphStore.open(built.path, verify=True)  # full adjacency contract

    def test_unknown_recipe_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown store dataset"):
            build_store("nope", cache_dir=tmp_path)

    def test_aborted_build_is_not_openable(self, store, tmp_path):
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / "indptr.bin").write_bytes(b"\x00" * 16)
        with pytest.raises(FileNotFoundError, match="no manifest"):
            GraphStore.open(partial)


class TestOpen:
    def test_open_verify_passes(self, store):
        GraphStore.open(store.path, verify=True)

    def test_version_guard(self, store, tmp_path):
        clone = tmp_path / "clone"
        clone.mkdir()
        for item in store.path.iterdir():
            (clone / item.name).write_bytes(item.read_bytes())
        manifest = json.loads((clone / "manifest.json").read_text())
        manifest["version"] = 99
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported manifest version"):
            GraphStore.open(clone)

    def test_structure_guard(self, store, tmp_path):
        clone = tmp_path / "clone"
        clone.mkdir()
        for item in store.path.iterdir():
            (clone / item.name).write_bytes(item.read_bytes())
        manifest = json.loads((clone / "manifest.json").read_text())
        manifest["nnz"] += 2  # lie about the entry count
        for name in ("indices.bin", "data.bin"):
            grown = clone / name
            grown.write_bytes(grown.read_bytes() + b"\x00" * 16)
        (clone / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="indptr ends"):
            GraphStore.open(clone)


class TestMmapDiscipline:
    def test_arrays_are_read_only(self, store):
        csr = store.csr()
        for array in (csr.data, csr.indices, csr.indptr):
            assert not array.flags.writeable
        with pytest.raises(ValueError):
            csr.data[0] = 2.0

    def test_to_sparse_is_zero_copy(self, store):
        csr = store.csr()
        assert to_sparse(store) is csr
        assert to_sparse(csr) is csr

    def test_sorted_indices_flag_set(self, store):
        # scipy must never attempt an in-place sort of the read-only buffers
        assert store.csr().has_sorted_indices
        for row in range(store.number_of_nodes):
            csr = store.csr()
            segment = csr.indices[csr.indptr[row] : csr.indptr[row + 1]]
            if segment.size:
                assert np.all(np.diff(segment) > 0)

    def test_fingerprint_token(self, store):
        assert store.csr()._repro_fingerprint == f"graph-store:{store.digest}"


class TestGraphQueries:
    def test_degrees_match_features(self, store):
        n_feature, e_feature = egonet_features_sparse(store.detached_csr())
        assert np.array_equal(store.degrees(), n_feature)

    def test_precomputed_features_exact(self, store):
        n_ref, e_ref = egonet_features_sparse(store.detached_csr())
        n_mm, e_mm = store.features()
        assert np.array_equal(np.asarray(n_mm), n_ref)
        assert np.array_equal(np.asarray(e_mm), e_ref)

    def test_is_connected(self, store):
        assert store.is_connected()  # the ring seed guarantees it

    def test_counts(self, store):
        assert store.shape == (store.number_of_nodes,) * 2
        assert store.nnz == 2 * store.number_of_edges

"""Store-spec execution: workers that memory-map the graph via a
``store``-kind EngineSpec must produce results bit-identical to payload-spec
workers and to the serial campaign, at any worker count."""

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import (
    AttackCampaign,
    ParallelCampaignExecutor,
    build_campaign,
)
from repro.oddball.surrogate import EngineSpec, SurrogateEngine

# store / sweep_jobs / assert_outcomes_identical come from tests/conftest.py
# (shared fixtures); this module derives its targets from store degrees.


@pytest.fixture(scope="module")
def memory_graph(store):
    return store.detached_csr()


@pytest.fixture(scope="module")
def store_targets(store):
    return np.argsort(-store.degrees(), kind="stable")[:8].tolist()


class TestStoreSpec:
    def test_spec_is_a_path_not_a_payload(self, store):
        spec = EngineSpec.from_store(store)
        assert spec.kind == "store"
        assert spec.backend == "sparse"
        assert spec.payload == (str(store.path),)

    def test_spec_round_trip_builds_identical_engine(self, store, memory_graph):
        spec = EngineSpec.from_store(store)
        targets = [0, 1, 2]
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        rebuilt = spec.build(targets, candidates=empty)
        reference = SurrogateEngine.create(
            memory_graph, targets, empty, backend="sparse"
        )
        assert rebuilt.backend == "sparse"
        assert rebuilt.current_loss() == reference.current_loss()
        n_a, e_a = rebuilt.node_features()
        n_b, e_b = reference.node_features()
        assert np.array_equal(n_a, n_b)
        assert np.array_equal(e_a, e_b)

    def test_to_graph_maps_read_only(self, store):
        graph = EngineSpec.from_store(store).to_graph()
        assert sparse.issparse(graph)
        assert not graph.data.flags.writeable


class TestStoreExecutorParity:
    def test_store_spec_1_vs_4_workers_vs_payload(self, store, memory_graph, sweep_jobs, assert_outcomes_identical, store_targets):
        """The satellite contract: a 1-worker and a 4-worker run from a
        ``store_path`` spec agree bit-for-bit with each other AND with the
        payload-spec (in-memory CSR) execution of the same grid."""
        jobs = sweep_jobs(store_targets, count=6)
        store_serial = build_campaign(store, workers=1).run(jobs)
        store_parallel = build_campaign(store, workers=4).run(jobs)
        payload_parallel = ParallelCampaignExecutor(
            memory_graph, workers=4, backend="sparse"
        ).run(jobs)
        assert_outcomes_identical(store_serial, store_parallel)
        assert_outcomes_identical(store_parallel, payload_parallel)

    def test_worker_stats_record_rss(self, store, sweep_jobs, store_targets):
        executor = ParallelCampaignExecutor(store, workers=2)
        executor.run(sweep_jobs(store_targets, count=4))
        assert executor.last_worker_stats
        for stats in executor.last_worker_stats:
            assert stats["max_rss_kb"] > 0

    def test_store_checkpoint_resume(self, store, tmp_path, sweep_jobs, assert_outcomes_identical, store_targets):
        jobs = sweep_jobs(store_targets, count=6)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(store, checkpoint_path=checkpoint).run(jobs[:2])
        resumed = ParallelCampaignExecutor(
            store, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        fresh = AttackCampaign(store).run(jobs)
        assert resumed.resumed_jobs == 2
        assert_outcomes_identical(fresh, resumed)

    def test_dense_backend_rejected(self, store):
        with pytest.raises(ValueError, match="sparse-only"):
            ParallelCampaignExecutor(store, workers=2, backend="dense")


class TestShardTruncation:
    def test_truncated_shard_mid_record_resumes(self, store, tmp_path, sweep_jobs, assert_outcomes_identical, store_targets):
        """Satellite: kill a worker mid-append (simulated by truncating its
        shard inside the final record) — the resume must skip exactly the
        torn job, warn, and still converge to the serial result."""
        jobs = sweep_jobs(store_targets, count=6)
        checkpoint = tmp_path / "campaign.jsonl"
        executor = ParallelCampaignExecutor(
            store, workers=2, checkpoint_path=checkpoint
        )
        executor.run(jobs)
        # forge a killed run: move two completed outcomes back into a shard,
        # then tear the shard's last record in half
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == len(jobs) + 1  # header + one line per job
        shard = tmp_path / "campaign.jsonl.shard0"
        torn = lines[-1][: len(lines[-1]) // 2]
        shard.write_text("\n".join([lines[0], lines[-2], torn]) + "\n")
        checkpoint.write_text("\n".join(lines[:-2]) + "\n")

        resumed = ParallelCampaignExecutor(
            store, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        fresh = AttackCampaign(store).run(jobs)
        # everything the intact shard lines held was recovered; only the
        # torn record re-ran
        assert resumed.resumed_jobs == len(jobs) - 1
        assert_outcomes_identical(fresh, resumed)
        assert not shard.exists()  # merged and removed


class TestFingerprintRoundTrip:
    def test_tagged_csr_through_executor_with_checkpoint(self, store, tmp_path, sweep_jobs, assert_outcomes_identical, store_targets):
        """Passing the store's *tagged CSR* (not the GraphStore) must work:
        the parent fingerprints by the store token, workers rebuild from a
        byte payload — the token has to survive the spec round-trip or the
        shard merge rejects every completed job."""
        jobs = sweep_jobs(store_targets, count=4)
        checkpoint = tmp_path / "campaign.jsonl"
        via_csr = ParallelCampaignExecutor(
            store.csr(), workers=2, backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        fresh = AttackCampaign(store).run(jobs)
        assert_outcomes_identical(fresh, via_csr)
        # and the checkpoint interoperates with a GraphStore-built campaign
        resumed = AttackCampaign(store, checkpoint_path=checkpoint).run(jobs)
        assert resumed.resumed_jobs == len(jobs)

    def test_spec_round_trip_preserves_token(self, store):
        spec = EngineSpec.from_graph(store.csr(), backend="sparse")
        assert spec.kind == "csr"
        assert spec.fingerprint == f"graph-store:{store.digest}"
        rebuilt = spec.to_graph()
        assert rebuilt._repro_fingerprint == spec.fingerprint

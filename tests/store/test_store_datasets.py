"""Paper-scale dataset names: load_dataset resolution, statistics, and the
table1 store rows."""

import numpy as np
import pytest

from repro.graph.datasets import dataset_statistics, load_dataset
from repro.store import STORE_DATASET_NAMES, GraphStore, load_store_dataset


class TestLoadDataset:
    def test_full_name_resolves_to_store(self, tmp_path):
        dataset = load_dataset(
            "blogcatalog-full", rng=3, scale=0.01, cache_dir=tmp_path
        )
        assert isinstance(dataset.graph, GraphStore)
        assert dataset.name == "blogcatalog-full"
        assert dataset.n_nodes == 888
        assert set(dataset.planted) == {"cliques", "stars"}

    def test_generator_rng_rejected_for_store_names(self, tmp_path):
        with pytest.raises(TypeError, match="integer seed"):
            load_dataset(
                "blogcatalog-full", rng=np.random.default_rng(0),
                scale=0.01, cache_dir=tmp_path,
            )

    def test_unknown_name_lists_store_names(self):
        with pytest.raises(KeyError, match="blogcatalog-full"):
            load_dataset("not-a-dataset")

    def test_all_store_names_resolve(self, tmp_path):
        for name in STORE_DATASET_NAMES:
            dataset = load_store_dataset(
                name, seed=1, scale=0.01, cache_dir=tmp_path
            )
            assert dataset.name == name
            assert dataset.n_edges > 0

    def test_reload_hits_the_cache(self, tmp_path):
        first = load_dataset("ba-full", rng=2, scale=0.02, cache_dir=tmp_path)
        second = load_dataset("ba-full", rng=2, scale=0.02, cache_dir=tmp_path)
        assert first.graph.path == second.graph.path


class TestStatistics:
    def test_dataset_statistics_on_store(self, tmp_path):
        dataset = load_dataset(
            "wikivote-full", rng=5, scale=0.02, cache_dir=tmp_path
        )
        stats = dataset_statistics(dataset)
        assert stats["nodes"] == dataset.n_nodes
        assert stats["edges"] == dataset.n_edges
        assert stats["connected"] is True
        assert stats["mean_degree"] == pytest.approx(
            2 * dataset.n_edges / dataset.n_nodes
        )


class TestTable1StoreRows:
    def test_store_rows_appended(self, tmp_path):
        from repro.experiments.config import SMOKE
        from repro.experiments.table1_datasets import run

        payload = run(
            scale=SMOKE.with_(graph_scale=0.02), seed=3, workers=1,
            store_datasets=["blogcatalog-full"], store_cache=tmp_path,
        )
        names = [row["name"] for row in payload["rows"]]
        assert names[-1] == "blogcatalog-full"
        store_row = payload["rows"][-1]
        assert store_row["attack_budget"] == 5
        assert "attack_tau" in store_row


class TestSparseOnlyGuard:
    def test_serial_campaign_rejects_dense_backend(self, tmp_path):
        from repro.attacks import AttackCampaign, build_campaign
        from repro.store import build_store

        store = build_store("er", cache_dir=tmp_path, scale=0.1, seed=1)
        with pytest.raises(ValueError, match="sparse-only"):
            AttackCampaign(store, backend="dense")
        with pytest.raises(ValueError, match="sparse-only"):
            build_campaign(store, workers=1, backend="dense")

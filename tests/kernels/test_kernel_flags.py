"""Flag resolution and degraded-mode behaviour of the kernel layer.

``kernels="auto"`` must degrade to numpy with exactly one warning when no
toolchain exists, an explicit ``kernels="compiled"`` must fail loudly, and
the flag must survive the EngineSpec transport round-trip unresolved (each
worker host re-resolves it for itself).
"""

import pickle
import warnings

import numpy as np
import pytest

import repro.kernels as kernels_mod
from repro.graph.generators import erdos_renyi
from repro.kernels import (
    KERNEL_BACKENDS,
    KERNEL_REGISTRY,
    KernelBuildError,
    KernelUnavailableError,
    resolve_kernels,
    validate_kernels,
)
from repro.oddball.surrogate import EngineSpec, SurrogateEngine


@pytest.fixture()
def pristine_kernel_state(monkeypatch):
    """Reset the module-level caches so each test observes a fresh process."""
    monkeypatch.setattr(kernels_mod, "_DEFAULT", None)
    monkeypatch.setattr(kernels_mod, "_TABLE", None)
    monkeypatch.setattr(kernels_mod, "_warned_fallback", False)
    monkeypatch.delenv("REPRO_KERNELS", raising=False)


def _break_toolchain(monkeypatch):
    """Simulate a host with no C compiler and no cffi."""
    monkeypatch.setattr(kernels_mod, "toolchain_available", lambda: False)

    def boom():
        raise KernelBuildError("no C compiler found (simulated)")

    monkeypatch.setattr(kernels_mod, "kernel_table", boom)


class TestFlagValidation:
    def test_valid_values_pass_through(self):
        for value in KERNEL_BACKENDS:
            assert validate_kernels(value) == value

    def test_invalid_value_raises(self):
        with pytest.raises(ValueError, match="kernels must be one of"):
            validate_kernels("cuda")

    def test_registry_is_fixed(self):
        assert KERNEL_REGISTRY == (
            "toggle_batch",
            "pair_values",
            "scatter_gradient",
            "triangle_counts",
        )


class TestResolution:
    def test_numpy_is_always_available(self, pristine_kernel_state):
        assert resolve_kernels("numpy") == "numpy"

    def test_env_default_feeds_auto(self, pristine_kernel_state, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert resolve_kernels("auto") == "numpy"

    def test_set_default_beats_env(self, pristine_kernel_state, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        kernels_mod.set_default_kernels("numpy")
        assert resolve_kernels("auto") == "numpy"
        kernels_mod.set_default_kernels("auto")
        assert kernels_mod.default_kernels() == "numpy"  # env again

    def test_invalid_env_value_raises(self, pristine_kernel_state, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(ValueError, match="kernels must be one of"):
            resolve_kernels("auto")


class TestDegradedMode:
    def test_auto_without_toolchain_falls_back_with_one_warning(
        self, pristine_kernel_state, monkeypatch
    ):
        _break_toolchain(monkeypatch)
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert resolve_kernels("auto") == "numpy"
        # Second resolution must stay silent — one warning per process.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernels("auto") == "numpy"

    def test_compiled_without_toolchain_raises_clearly(
        self, pristine_kernel_state, monkeypatch
    ):
        _break_toolchain(monkeypatch)
        with pytest.raises(KernelUnavailableError, match="no C compiler"):
            resolve_kernels("compiled")

    def test_engine_auto_degrades_to_working_numpy_engine(
        self, pristine_kernel_state, monkeypatch
    ):
        _break_toolchain(monkeypatch)
        graph = erdos_renyi(30, 0.15, rng=2)
        with pytest.warns(RuntimeWarning):
            engine = SurrogateEngine.create(
                graph, [0, 1], None, backend="sparse", kernels="auto"
            )
        assert engine.kernels == "numpy"
        assert np.isfinite(engine.current_loss())

    def test_compiled_engine_without_toolchain_raises(
        self, pristine_kernel_state, monkeypatch
    ):
        _break_toolchain(monkeypatch)
        graph = erdos_renyi(30, 0.15, rng=2)
        with pytest.raises(KernelUnavailableError):
            SurrogateEngine.create(
                graph, [0, 1], None, backend="sparse", kernels="compiled"
            )

    def test_compiled_available_reports_false(
        self, pristine_kernel_state, monkeypatch
    ):
        _break_toolchain(monkeypatch)
        assert kernels_mod.compiled_available() is False


class TestSpecTransport:
    def test_spec_carries_requested_flag_unresolved(self):
        graph = erdos_renyi(40, 0.1, rng=4)
        engine = SurrogateEngine.create(
            graph, [0], None, backend="sparse", kernels="numpy"
        )
        spec = engine.engine_spec()
        assert spec.kernels == "numpy"
        rebuilt = pickle.loads(pickle.dumps(spec))
        assert rebuilt.kernels == spec.kernels
        assert rebuilt.backend == spec.backend
        assert rebuilt.kind == spec.kind
        worker_engine = SurrogateEngine.from_spec(rebuilt, [0])
        assert worker_engine.kernels == "numpy"

    def test_from_graph_default_is_auto(self):
        graph = erdos_renyi(40, 0.1, rng=4)
        spec = EngineSpec.from_graph(graph, backend="sparse")
        assert spec.kernels == "auto"

    def test_from_graph_validates_kernels(self):
        graph = erdos_renyi(40, 0.1, rng=4)
        with pytest.raises(ValueError, match="kernels must be one of"):
            EngineSpec.from_graph(graph, backend="sparse", kernels="simd")

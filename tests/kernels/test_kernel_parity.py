"""numpy-vs-compiled kernel parity: every KERNEL_REGISTRY primitive.

The compiled backend's entire contract is *bit-identity* with the numpy
reference paths — same features, same gradients, same flips, down to the
last float64 bit.  Each ``*Parity*`` class below pins one registry kernel
to its oracle; the ``repro.analysis`` kernel-parity audit fails CI if a
registry entry loses its class here.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.graph.sparse import egonet_features_sparse, to_sparse
from repro.kernels import compiled_available, kernel_table
from repro.oddball.surrogate import (
    SurrogateEngine,
    _scatter_pair_gradient,
)

pytestmark = pytest.mark.skipif(
    not compiled_available(),
    reason="no C toolchain/cffi on this host; compiled backend unavailable",
)


def _graphs():
    return [
        barabasi_albert(80, 3, rng=11),
        erdos_renyi(60, 0.12, rng=7),
    ]


def _pairs(n, rng, count=200):
    rows = rng.integers(0, n, size=count)
    cols = rng.integers(0, n, size=count)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return np.minimum(rows, cols), np.maximum(rows, cols)


class TestPairValuesParity:
    """``pair_values`` against numpy CSR membership."""

    KERNEL = "pair_values"

    @pytest.mark.parametrize("index_dtype", [np.int32, np.int64])
    def test_matches_dense_lookup(self, index_dtype):
        rng = np.random.default_rng(0)
        for graph in _graphs():
            csr = to_sparse(graph)
            csr.indices = csr.indices.astype(index_dtype)
            csr.indptr = csr.indptr.astype(index_dtype)
            rows, cols = _pairs(csr.shape[0], rng)
            dense = csr.toarray()
            expected = dense[rows, cols]
            got = kernel_table().pair_values(
                csr, rows.astype(np.int64), cols.astype(np.int64)
            )
            assert got.dtype == np.float64
            assert np.array_equal(got, expected)

    def test_empty_batch(self):
        csr = to_sparse(_graphs()[0])
        out = kernel_table().pair_values(
            csr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert out.size == 0

    def test_unsorted_csr_rejected(self):
        csr = to_sparse(_graphs()[0]).copy()
        csr.indices[:2] = csr.indices[:2][::-1]
        csr.has_sorted_indices = False
        with pytest.raises(ValueError, match="sorted"):
            kernel_table().pair_values(
                csr, np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
            )


class TestTriangleCountsParity:
    """``triangle_counts`` against the scipy spgemm triangle term."""

    KERNEL = "triangle_counts"

    def test_matches_sparse_product(self):
        for graph in _graphs():
            csr = to_sparse(graph)
            expected = np.asarray(
                ((csr @ csr).multiply(csr)).sum(axis=1)
            ).ravel()
            got = kernel_table().triangle_counts(csr)
            assert np.array_equal(got, expected)

    def test_egonet_features_sparse_agrees_across_kernels(self):
        for graph in _graphs():
            n_np, e_np = egonet_features_sparse(graph, kernels="numpy")
            n_c, e_c = egonet_features_sparse(graph, kernels="compiled")
            assert np.array_equal(n_np, n_c)
            assert np.array_equal(e_np, e_c)

    def test_triangle_free_graph_is_zero(self):
        star = sparse.csr_matrix(
            (np.ones(6), ([0, 0, 0, 1, 2, 3], [1, 2, 3, 0, 0, 0])),
            shape=(4, 4),
        )
        assert np.array_equal(
            kernel_table().triangle_counts(to_sparse(star)), np.zeros(4)
        )


class TestToggleBatchParity:
    """``toggle_batch`` against the per-flip Python set reference."""

    KERNEL = "toggle_batch"

    def _engines(self, graph):
        return (
            IncrementalEgonetFeatures(graph, kernels="numpy"),
            IncrementalEgonetFeatures(graph, kernels="compiled"),
        )

    def _assert_state_equal(self, ref, fast):
        assert np.array_equal(ref._n_feature, fast._n_feature)
        assert np.array_equal(ref._e_feature, fast._e_feature)
        assert (ref.adjacency_csr() != fast.adjacency_csr()).nnz == 0

    def test_interleaved_flips_batches_rollbacks(self):
        graph = _graphs()[0]
        ref, fast = self._engines(graph)
        assert ref.kernels == "numpy" and fast.kernels == "compiled"
        rng = np.random.default_rng(3)
        rows, cols = _pairs(graph.number_of_nodes, rng, count=40)
        pairs = list(zip(rows.tolist(), cols.tolist()))

        for u, v in pairs[:5]:
            ref.flip(u, v)
            fast.flip(u, v)
        self._assert_state_equal(ref, fast)

        ref.flip_batch(pairs[5:25])
        fast.flip_batch(pairs[5:25])
        self._assert_state_equal(ref, fast)

        ref.rollback(7)
        fast.rollback(7)
        self._assert_state_equal(ref, fast)

        ref.flip_batch(pairs[25:])
        fast.flip_batch(pairs[25:])
        self._assert_state_equal(ref, fast)

        ref.rollback(ref.depth)
        fast.rollback(fast.depth)
        self._assert_state_equal(ref, fast)
        clean_n, clean_e = egonet_features_sparse(graph)
        assert np.array_equal(fast._n_feature, clean_n)
        assert np.array_equal(fast._e_feature, clean_e)

    def test_repeated_pair_in_one_batch_is_apply_then_undo(self):
        graph = _graphs()[1]
        ref, fast = self._engines(graph)
        batch = [(1, 2), (3, 4), (1, 2), (1, 2)]
        ref.flip_batch(batch)
        fast.flip_batch(batch)
        self._assert_state_equal(ref, fast)
        assert fast.is_edge(1, 2) == ref.is_edge(1, 2)

    def test_membership_and_neighbors_match_after_flips(self):
        graph = _graphs()[0]
        ref, fast = self._engines(graph)
        batch = [(0, 1), (0, 2), (5, 9), (0, 1)]
        ref.flip_batch(batch)
        fast.flip_batch(batch)
        for node in (0, 1, 2, 5, 9, 17):
            assert ref.neighbors(node) == fast.neighbors(node)
            assert ref.degree(node) == fast.degree(node)


class TestScatterGradientParity:
    """``scatter_gradient`` against ``_scatter_pair_gradient``."""

    KERNEL = "scatter_gradient"

    def _inputs(self, graph, rng):
        csr = to_sparse(graph)
        n = csr.shape[0]
        rows, cols = _pairs(n, rng, count=300)
        d_n = rng.standard_normal(n)
        d_e = rng.standard_normal(n)
        return csr, d_n, d_e, rows.astype(np.int64), cols.astype(np.int64)

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(5)
        for graph in _graphs():
            csr, d_n, d_e, rows, cols = self._inputs(graph, rng)
            expected = _scatter_pair_gradient(csr, d_n, d_e, rows, cols)
            got = kernel_table().scatter_pair_gradient(csr, d_n, d_e, rows, cols)
            assert np.array_equal(got, expected)

    def test_matches_numpy_reference_with_delta_overlay(self):
        rng = np.random.default_rng(6)
        for graph in _graphs():
            csr, d_n, d_e, rows, cols = self._inputs(graph, rng)
            delta = [
                (int(rows[0]), int(cols[0]), 1.0),
                (int(rows[1]), int(cols[1]), -1.0),
                (3, 7, 1.0),
            ]
            expected = _scatter_pair_gradient(
                csr, d_n, d_e, rows, cols, delta=delta
            )
            got = kernel_table().scatter_pair_gradient(
                csr, d_n, d_e, rows, cols, delta=delta
            )
            assert np.array_equal(got, expected)

    def test_empty_candidates(self):
        csr = to_sparse(_graphs()[0])
        n = csr.shape[0]
        out = kernel_table().scatter_pair_gradient(
            csr,
            np.zeros(n),
            np.zeros(n),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        assert out.size == 0


class TestEngineKernelParity:
    """End-to-end: the sparse engine is bit-identical under both backends."""

    def _engine(self, graph, kernels):
        csr = to_sparse(graph)
        n = csr.shape[0]
        rng = np.random.default_rng(9)
        rows, cols = _pairs(n, rng, count=250)
        return SurrogateEngine.create(
            csr,
            [0, 3, 5],
            (rows, cols),
            backend="sparse",
            kernels=kernels,
        )

    def test_gradients_and_steps_match(self):
        for graph in _graphs():
            ref = self._engine(graph, "numpy")
            fast = self._engine(graph, "compiled")
            assert ref.kernels == "numpy" and fast.kernels == "compiled"
            assert np.array_equal(
                ref.candidate_gradient(), fast.candidate_gradient()
            )
            values = np.clip(
                ref.edge_values + 0.25 * np.sign(0.5 - ref.edge_values), 0, 1
            )
            loss_ref, grad_ref = ref.relaxed_step(values)
            loss_fast, grad_fast = fast.relaxed_step(values)
            assert loss_ref == loss_fast
            assert np.array_equal(grad_ref, grad_fast)
            for u, v in [(0, 1), (3, 9), (5, 12)]:
                ref.apply_flip(u, v)
                fast.apply_flip(u, v)
            assert ref.current_loss() == fast.current_loss()
            assert np.array_equal(
                ref.candidate_gradient(), fast.candidate_gradient()
            )

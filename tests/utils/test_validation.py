"""Tests for input validators."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_adjacency,
    check_budget,
    check_probability,
    check_square,
    check_symmetric,
)


class TestCheckSquare:
    def test_passes(self):
        out = check_square(np.zeros((3, 3)))
        assert out.shape == (3, 3)

    @pytest.mark.parametrize("shape", [(2, 3), (3,), (2, 2, 2)])
    def test_rejects(self, shape):
        with pytest.raises(ValueError):
            check_square(np.zeros(shape))


class TestCheckSymmetric:
    def test_passes(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        check_symmetric(m)

    def test_rejects(self):
        m = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(m)

    def test_tolerance(self):
        m = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        check_symmetric(m)  # within atol


class TestCheckAdjacency:
    def test_valid_passes_and_casts(self):
        m = np.array([[0, 1], [1, 0]], dtype=int)
        out = check_adjacency(m)
        assert out.dtype == np.float64

    def test_rejects_values(self):
        m = np.array([[0.0, 0.5], [0.5, 0.0]])
        with pytest.raises(ValueError, match="binary"):
            check_adjacency(m)

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            check_adjacency(np.eye(2))

    def test_empty_ok(self):
        check_adjacency(np.zeros((0, 0)))


class TestScalars:
    def test_budget(self):
        assert check_budget(3) == 3
        assert check_budget(np.int64(2)) == 2
        with pytest.raises(ValueError):
            check_budget(-1)
        with pytest.raises(TypeError):
            check_budget(1.5)

    def test_probability(self):
        assert check_probability(0.5) == 0.5
        assert check_probability(0) == 0.0
        with pytest.raises(ValueError):
            check_probability(1.2)

"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_from_int_deterministic(self):
        a, b = as_generator(7), as_generator(7)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(as_generator(ss), np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawnGenerators:
    def test_count_and_independence(self):
        gens = spawn_generators(0, 3)
        assert len(gens) == 3
        draws = [g.integers(1 << 30) for g in gens]
        assert len(set(draws)) == 3

    def test_deterministic(self):
        a = [g.integers(1 << 30) for g in spawn_generators(5, 2)]
        b = [g.integers(1 << 30) for g in spawn_generators(5, 2)]
        assert a == b

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        a = SeedSequenceFactory(3).generator("data")
        b = SeedSequenceFactory(3).generator("data")
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_different_names_differ(self):
        factory = SeedSequenceFactory(3)
        a = factory.generator("data").integers(1 << 30)
        b = factory.generator("model").integers(1 << 30)
        assert a != b

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).generator("x").integers(1 << 30)
        b = SeedSequenceFactory(2).generator("x").integers(1 << 30)
        assert a != b

    def test_order_independence(self):
        f1 = SeedSequenceFactory(9)
        _ = f1.generator("first")
        late = f1.generator("second").integers(1 << 30)
        f2 = SeedSequenceFactory(9)
        early = f2.generator("second").integers(1 << 30)
        assert late == early

    def test_seed_and_generators_helpers(self):
        factory = SeedSequenceFactory(4)
        assert isinstance(factory.seed("a"), int)
        gens = factory.generators(["a", "b"])
        assert set(gens) == {"a", "b"}

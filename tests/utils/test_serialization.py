"""Tests for JSON / npz serialization."""

import numpy as np
import pytest

from repro.utils.serialization import load_json, load_npz, save_json, save_npz


class TestJson:
    def test_roundtrip_plain(self, tmp_path):
        payload = {"a": 1, "b": [1.5, "x"], "c": {"nested": True}}
        path = save_json(tmp_path / "out.json", payload)
        assert load_json(path) == payload

    def test_numpy_types_encoded(self, tmp_path):
        payload = {
            "int": np.int64(5),
            "float": np.float64(2.5),
            "bool": np.bool_(True),
            "array": np.arange(3),
        }
        path = save_json(tmp_path / "np.json", payload)
        loaded = load_json(path)
        assert loaded == {"int": 5, "float": 2.5, "bool": True, "array": [0, 1, 2]}

    def test_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "deep" / "dir" / "x.json", {"k": 1})
        assert path.exists()

    def test_unencodable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(tmp_path / "bad.json", {"f": object()})


class TestNpz:
    def test_roundtrip(self, tmp_path):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(4)}
        path = save_npz(tmp_path / "arrays.npz", arrays)
        loaded = load_npz(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_lists_coerced(self, tmp_path):
        path = save_npz(tmp_path / "c.npz", {"x": [1, 2, 3]})
        np.testing.assert_array_equal(load_npz(path)["x"], [1, 2, 3])

"""Tests for timing and logging helpers."""

import logging

from repro.utils.logging import configure, get_logger
from repro.utils.timing import Timer, timed


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer("label") as t:
            _ = sum(range(100))
        assert t.elapsed >= 0.0

    def test_decorator_preserves_result_and_name(self):
        @timed
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert add.__name__ == "add"


class TestLogging:
    def test_namespacing(self):
        assert get_logger("attacks").name == "repro.attacks"
        assert get_logger("repro.graph").name == "repro.graph"

    def test_configure_idempotent(self):
        configure(level=logging.WARNING)
        configure(level=logging.WARNING)
        root = logging.getLogger("repro")
        assert len(root.handlers) <= 1

"""Telemetry must never change results: flip sets are bit-identical on/off.

Telemetry is excluded from every content hash — job ids, checkpoint
payloads, fingerprints — so a traced run and an untraced run of the same
grid must agree bit-for-bit, serial and parallel, on either kernel
backend.  These tests pin that contract end-to-end.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.attacks.campaign import AttackCampaign, CampaignResult
from repro.attacks.executor import ParallelCampaignExecutor
from repro.kernels import kernel_table


def _kernel_backends():
    backends = ["numpy"]
    if kernel_table() is not None:
        backends.append("compiled")
    return backends


class TestFlipParity:
    def test_serial_campaign_identical_on_off(
        self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=4)
        telemetry.configure(None)
        untraced = AttackCampaign(graph).run(jobs)
        telemetry.configure(tmp_path / "trace")
        traced = AttackCampaign(graph).run(jobs)
        telemetry.shutdown()
        assert_outcomes_identical(untraced, traced)
        # the traced run actually produced a trace
        assert telemetry.load_trace_dir(tmp_path / "trace")

    @pytest.mark.parametrize("kernels", _kernel_backends())
    def test_kernel_backends_identical_on_off(
        self, graph_and_targets, tmp_path, sweep_jobs,
        assert_outcomes_identical, kernels,
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=3)
        telemetry.configure(None)
        untraced = AttackCampaign(graph, kernels=kernels).run(jobs)
        telemetry.configure(tmp_path / "trace")
        traced = AttackCampaign(graph, kernels=kernels).run(jobs)
        telemetry.shutdown()
        assert_outcomes_identical(untraced, traced)

    def test_parallel_executor_identical_on_off(
        self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=4)
        untraced = ParallelCampaignExecutor(graph, workers=2).run(jobs)
        traced = ParallelCampaignExecutor(
            graph, workers=2, telemetry=tmp_path / "trace"
        ).run(jobs)
        telemetry.shutdown()
        assert_outcomes_identical(untraced, traced)
        # both worker sinks and the parent's landed in the directory
        events = telemetry.load_trace_dir(tmp_path / "trace")
        workers = {e["worker"] for e in events}
        assert {"worker-0", "worker-1"} <= workers

    def test_job_ids_unchanged_by_telemetry(
        self, graph_and_targets, tmp_path, sweep_jobs
    ):
        _, targets = graph_and_targets
        before = [job.job_id for job in sweep_jobs(targets, count=4)]
        telemetry.configure(tmp_path / "trace")
        after = [job.job_id for job in sweep_jobs(targets, count=4)]
        telemetry.shutdown()
        assert before == after


class TestCampaignResultStats:
    def test_roundtrip_with_observability_fields(self):
        result = CampaignResult(
            outcomes=[],
            backend="sparse",
            n=90,
            seconds=1.5,
            worker_stats=[{"jobs": 2, "max_rss_kb": 1024}],
            dead_workers=("scheduler-worker-1",),
            requeues=3,
        )
        restored = CampaignResult.from_dict(result.to_dict())
        assert restored.worker_stats == [{"jobs": 2, "max_rss_kb": 1024}]
        assert restored.dead_workers == ("scheduler-worker-1",)
        assert restored.requeues == 3
        assert restored.peak_rss_kb == 1024

    def test_defaults_load_from_old_payloads(self):
        result = CampaignResult(outcomes=[], backend="sparse", n=90, seconds=1.0)
        payload = result.to_dict()
        for key in ("worker_stats", "dead_workers", "requeues"):
            payload.pop(key)
        restored = CampaignResult.from_dict(payload)
        assert restored.worker_stats == []
        assert restored.dead_workers == ()
        assert restored.requeues == 0
        assert restored.peak_rss_kb == 0

"""Tracer semantics: nesting, counters, configuration, Timer integration."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import tracer as tracer_module
from repro.utils.timing import Timer, timed


def _spans(events):
    return [e for e in events if e["kind"] == "span"]


class TestSpans:
    def test_nested_spans_parent_correctly(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                pass
        telemetry.shutdown()
        events = telemetry.load_trace_dir(tmp_path)
        by_name = {e["name"]: e for e in _spans(events)}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert inner.span_id != outer.span_id
        # the inner span closed first, so it appears first in the file
        assert by_name["inner"]["dur_ns"] <= by_name["outer"]["dur_ns"]

    def test_span_ids_are_worker_qualified(self, tmp_path):
        tracer = telemetry.configure(tmp_path, worker="w7")
        with tracer.span("a") as span:
            assert span.span_id.startswith("w7:")

    def test_annotate_extends_attrs(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with telemetry.span("op", fixed=1) as span:
            span.annotate(extra="yes")
        telemetry.shutdown()
        (span_record,) = _spans(telemetry.load_trace_dir(tmp_path))
        assert span_record["attrs"] == {"fixed": 1, "extra": "yes"}

    def test_record_span_assigns_id_and_parent(self, tmp_path):
        tracer = telemetry.configure(tmp_path, worker="main")
        with telemetry.span("outer"):
            tracer.record_span("timed", 100, 50)
        telemetry.shutdown()
        by_name = {e["name"]: e for e in _spans(telemetry.load_trace_dir(tmp_path))}
        assert by_name["timed"]["parent"] == by_name["outer"]["span"]
        assert by_name["timed"]["start_ns"] == 100
        assert by_name["timed"]["dur_ns"] == 50


class TestAttributePurity:
    def test_numpy_scalar_rejected(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with pytest.raises(TypeError, match="JSON primitive"):
            telemetry.span("op", value=np.float64(1.0))

    def test_container_rejected(self, tmp_path):
        tracer = telemetry.configure(tmp_path, worker="main")
        with pytest.raises(TypeError, match="JSON primitive"):
            tracer.event("op", value=[1, 2])

    def test_exact_primitives_accepted(self, tmp_path):
        tracer = telemetry.configure(tmp_path, worker="main")
        tracer.event("op", s="x", i=1, f=1.5, b=True, n=None)
        telemetry.shutdown()
        (event,) = telemetry.load_trace_dir(tmp_path)
        assert event["attrs"] == {"s": "x", "i": 1, "f": 1.5, "b": True,
                                  "n": None}


class TestCounters:
    def test_counters_flush_when_root_span_closes(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with telemetry.span("root"):
            telemetry.count("kernels.toggle_batch", 3, 900)
            telemetry.count("kernels.toggle_batch", 2, 100)
            assert telemetry.load_trace_dir(tmp_path) == []  # not yet durable
        counters = [
            e for e in telemetry.load_trace_dir(tmp_path)
            if e["kind"] == "counter"
        ]
        assert counters == [{
            "kind": "counter", "name": "kernels.toggle_batch",
            "trace": counters[0]["trace"], "worker": "main",
            "count": 5, "total_ns": 1000,
        }]

    def test_close_flushes_pending_counters(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        telemetry.count("loose", 1, 10)
        telemetry.shutdown()
        counters = [
            e for e in telemetry.load_trace_dir(tmp_path)
            if e["kind"] == "counter"
        ]
        assert [c["name"] for c in counters] == ["loose"]


class TestConfiguration:
    def test_off_by_default(self):
        assert telemetry.active_tracer() is None
        # null-safe helpers are no-ops rather than errors
        with telemetry.span("ignored") as span:
            assert span is None
        telemetry.event("ignored")
        telemetry.count("ignored")

    def test_env_auto_configures(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, str(tmp_path))
        tracer_module._RESOLVED = False
        tracer = telemetry.active_tracer()
        assert tracer is not None
        assert tracer.worker == f"main-{os.getpid()}"
        assert tracer.directory == tmp_path

    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.TELEMETRY_ENV, str(tmp_path / "env"))
        explicit = tmp_path / "explicit"
        tracer = telemetry.configure(explicit, worker="main")
        assert tracer.directory == explicit
        assert telemetry.active_tracer() is tracer

    def test_reconfigure_closes_predecessor(self, tmp_path):
        first = telemetry.configure(tmp_path / "a", worker="main")
        first.count("pending", 1)
        telemetry.configure(tmp_path / "b", worker="main")
        # predecessor flushed its counters on the way out
        counters = [
            e for e in telemetry.load_trace_dir(tmp_path / "a")
            if e["kind"] == "counter"
        ]
        assert [c["name"] for c in counters] == ["pending"]

    def test_shutdown_disables(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        telemetry.shutdown()
        assert telemetry.active_tracer() is None


class TestWorkerPlumbing:
    def test_worker_spec_off_is_none(self):
        assert telemetry.worker_spec("worker-0") is None

    def test_worker_spec_roundtrip(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with telemetry.span("drain"):
            spec = telemetry.worker_spec("worker-0")
        assert spec["worker"] == "worker-0"
        assert spec["dir"] == str(tmp_path)
        # the child's root spans hang under the parent's open span
        parent_tracer = telemetry.active_tracer()
        assert spec["parent"].startswith("main:")
        assert spec["trace"] == parent_tracer.trace
        child = telemetry.worker_configure(spec)
        assert child.worker == "worker-0"
        assert child.trace == parent_tracer.trace
        assert child.current_span_id() == spec["parent"]

    def test_worker_configure_none_disables(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        assert telemetry.worker_configure(None) is None
        assert telemetry.active_tracer() is None


class TestTimerIntegration:
    def test_labelled_timer_records_a_span(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with Timer("phase.fit"):
            pass
        telemetry.shutdown()
        (span,) = [
            e for e in telemetry.load_trace_dir(tmp_path)
            if e["kind"] == "span"
        ]
        assert span["name"] == "phase.fit"
        assert span["dur_ns"] >= 0

    def test_unlabelled_timer_records_nothing(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")
        with Timer() as t:
            pass
        telemetry.shutdown()
        assert t.elapsed >= 0.0
        assert telemetry.load_trace_dir(tmp_path) == []

    def test_timer_without_telemetry_still_times(self):
        with Timer("anything") as t:
            pass
        assert t.elapsed >= 0.0

    def test_timed_decorator_uses_qualname(self, tmp_path):
        telemetry.configure(tmp_path, worker="main")

        @timed
        def sample():
            return 42

        assert sample() == 42
        telemetry.shutdown()
        (span,) = [
            e for e in telemetry.load_trace_dir(tmp_path)
            if e["kind"] == "span"
        ]
        assert span["name"].endswith("sample")

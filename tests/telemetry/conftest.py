"""Telemetry-suite fixtures: every test starts with a clean tracer state.

The tracer configuration is process-global (module globals in
``repro.telemetry.tracer``), so tests must not leak an active tracer —
or a resolved-off decision — into each other.  The autouse fixture
clears the environment override and resets the resolution state on both
sides of every test.
"""

from __future__ import annotations

import pytest

from repro.telemetry import tracer as tracer_module


def _reset() -> None:
    tracer_module.shutdown()
    tracer_module._RESOLVED = False
    tracer_module._OWNER_PID = None


@pytest.fixture(autouse=True)
def isolated_telemetry(monkeypatch):
    monkeypatch.delenv(tracer_module.TELEMETRY_ENV, raising=False)
    _reset()
    yield
    _reset()

"""Cross-process trace merge under chaos: a SIGKILL'd worker's sink.

The scheduler chaos suite proves the *outcomes* survive a hard kill;
this suite proves the *trace* does.  A worker killed mid-lease leaves a
sink with no open-span records (spans are written on exit) but with its
instant events intact, and the merged trace must still load, summarize,
and export — with the lease steal visible as a ``scheduler.requeue``
event from a survivor.
"""

from __future__ import annotations

import json
import os
import signal

from repro import telemetry
from repro.attacks.campaign import AttackCampaign
from repro.attacks.scheduler import (
    SchedulingCampaignExecutor,
    WorkQueue,
    resolve_lease_ttl,
)
from repro.telemetry.report import chrome_trace, render_report, summarize


def _chaos_ttl():
    return min(resolve_lease_ttl(None), 1.0)


class TestMergeUnderChaos:
    def test_sigkilled_worker_trace_merges(
        self, graph_and_targets, tmp_path, monkeypatch, sweep_jobs,
        assert_outcomes_identical,
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        serial = AttackCampaign(graph).run(jobs)

        import repro.attacks.scheduler as scheduler_module

        real_main = scheduler_module._scheduler_worker_main

        def kamikaze_main(spec, queue_dir, shard_path, compute_ranks,
                          lease_ttl, worker_index, telemetry=None):
            if worker_index == 0:
                # Fork isolation: this rebinding exists only in the child.
                real_claim = WorkQueue.claim

                def claim_then_die(self):
                    job = real_claim(self)
                    if job is not None:
                        os.kill(os.getpid(), signal.SIGKILL)
                    return job

                WorkQueue.claim = claim_then_die
            real_main(spec, queue_dir, shard_path, compute_ranks,
                      lease_ttl, worker_index, telemetry=telemetry)

        monkeypatch.setattr(
            scheduler_module, "_scheduler_worker_main", kamikaze_main
        )
        trace_dir = tmp_path / "trace"
        executor = SchedulingCampaignExecutor(
            graph, workers=4, lease_ttl=_chaos_ttl(), telemetry=trace_dir,
        )
        result = executor.run(jobs)
        telemetry.shutdown()

        # the run itself recovered, and the result records the chaos
        assert result.dead_workers == ("scheduler-worker-0",)
        assert result.requeues >= 1
        assert result.worker_stats
        assert_outcomes_identical(serial, result)

        events = telemetry.load_trace_dir(trace_dir)
        workers = {e["worker"] for e in events}
        # the survivors' sinks all merged alongside the parent's
        assert {"main", "worker-1", "worker-2", "worker-3"} <= workers
        # survivors completed jobs, so their job spans landed
        job_workers = {
            e["worker"] for e in events
            if e["kind"] == "span" and e["name"] == "job"
        }
        assert job_workers <= {"worker-1", "worker-2", "worker-3"}
        assert len([e for e in events if e["name"] == "job"]) == len(jobs)
        # the dead worker's open spans are lost but its claim event is
        # durable (sinks flush per record), and a survivor logged the steal
        names = {e["name"] for e in events}
        assert "scheduler.requeue" in names
        dead = [e for e in events if e["worker"] == "worker-0"]
        assert dead, "the killed worker's sink should still merge"
        assert all(e["kind"] != "span" for e in dead)

        # aggregation handles the orphaned records without choking
        summary = summarize(events)
        assert summary["spans"] > 0
        text = render_report(summary)
        assert "scheduler.requeue" in text
        json.dumps(chrome_trace(events))

    def test_clean_scheduler_run_traces_every_worker(
        self, graph_and_targets, tmp_path, sweep_jobs,
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=4)
        trace_dir = tmp_path / "trace"
        result = SchedulingCampaignExecutor(
            graph, workers=2, telemetry=trace_dir
        ).run(jobs)
        telemetry.shutdown()
        assert result.dead_workers == ()
        assert len(result.worker_stats) == 2

        events = telemetry.load_trace_dir(trace_dir)
        spans = {e["span"]: e for e in events if e["kind"] == "span"}
        # every worker.run span parents into the main process's drain span
        drains = [s for s in spans.values() if s["name"] == "executor.drain"]
        assert len(drains) == 1
        runs = [s for s in spans.values() if s["name"] == "worker.run"]
        assert {s["worker"] for s in runs} == {"worker-0", "worker-1"}
        assert all(s["parent"] == drains[0]["span"] for s in runs)
        # claims and completions are first-class events
        claims = [e for e in events if e["name"] == "scheduler.claim"]
        completes = [e for e in events if e["name"] == "scheduler.complete"]
        assert len(claims) == len(jobs)
        assert len(completes) == len(jobs)
        # the critical path crosses the process boundary
        path = [step["name"] for step in summarize(events)["critical_path"]]
        assert path[0] == "executor.run"
        assert "worker.run" in path

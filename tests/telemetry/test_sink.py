"""TelemetrySink durability: JSONL roundtrip and torn-write tolerance."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    TelemetrySink,
    load_events,
    load_trace_dir,
    sink_path,
)


def _record(name: str, ns: int = 0) -> dict:
    return {"kind": "event", "name": name, "trace": "t", "ns": ns, "attrs": {}}


class TestRoundtrip:
    def test_append_then_load(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        sink = TelemetrySink(path, worker="w0")
        sink.append(_record("a", 1))
        sink.append(_record("b", 2))
        sink.close()
        events = load_events(path)
        assert [e["name"] for e in events] == ["a", "b"]
        # worker is defaulted from the header for records lacking one
        assert all(e["worker"] == "w0" for e in events)

    def test_header_written_once(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        sink = TelemetrySink(path, worker="w0")
        sink.append(_record("a"))
        sink.close()
        # reopening the same file appends, never re-writes the header
        again = TelemetrySink(path, worker="w0")
        again.append(_record("b"))
        again.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "format": TELEMETRY_FORMAT,
            "version": TELEMETRY_VERSION,
            "worker": "w0",
        }
        assert len(lines) == 3

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_events(tmp_path / "trace-none.jsonl") == []
        assert load_trace_dir(tmp_path / "nowhere") == []

    def test_trace_dir_merge_orders_by_timestamp(self, tmp_path):
        a = TelemetrySink(sink_path(tmp_path, "a"), worker="a")
        b = TelemetrySink(sink_path(tmp_path, "b"), worker="b")
        a.append(_record("third", 30))
        b.append(_record("first", 10))
        a.append(_record("second", 20))
        a.close()
        b.close()
        merged = load_trace_dir(tmp_path)
        assert [e["name"] for e in merged] == ["first", "second", "third"]


class TestTornWrites:
    def test_truncated_trailing_record_is_skipped(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        sink = TelemetrySink(path, worker="w0")
        sink.append(_record("kept"))
        sink.append(_record("torn"))
        sink.close()
        # Tear mid-record, exactly what a hard kill mid-write leaves.
        data = path.read_bytes()
        path.write_bytes(data[:-9])
        events = load_events(path)
        assert [e["name"] for e in events] == ["kept"]

    def test_append_after_tear_starts_a_fresh_line(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        sink = TelemetrySink(path, worker="w0")
        sink.append(_record("kept"))
        sink.append(_record("torn"))
        sink.close()
        path.write_bytes(path.read_bytes()[:-9])
        repaired = TelemetrySink(path, worker="w0")
        repaired.append(_record("after"))
        repaired.close()
        # the new record must not be glued onto the torn line
        assert [e["name"] for e in load_events(path)] == ["kept", "after"]

    def test_torn_header_only_loads_empty(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        path.write_text('{"format": "repro-telem')
        assert load_events(path) == []

    def test_corrupt_header_with_records_raises(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        path.write_text(
            '{"broken\n' + json.dumps(_record("a")) + "\n"
        )
        with pytest.raises(ValueError, match="corrupt header"):
            load_events(path)

    def test_malformed_record_is_skipped(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        sink = TelemetrySink(path, worker="w0")
        sink.append(_record("good"))
        sink.close()
        with path.open("a") as handle:
            handle.write('["not", "a", "record"]\n')
            handle.write('{"no_kind": true}\n')
        assert [e["name"] for e in load_events(path)] == ["good"]


class TestHeaderValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        path.write_text('{"format": "other", "version": 1}\n')
        with pytest.raises(ValueError, match="not a telemetry sink"):
            load_events(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = sink_path(tmp_path, "w0")
        header = {"format": TELEMETRY_FORMAT, "version": 999, "worker": "w"}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="unsupported version"):
            load_events(path)

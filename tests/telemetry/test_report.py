"""Report aggregation goldens: summarize, render_report, chrome_trace, CLI.

The inputs are synthetic traces with fixed nanosecond timestamps, so the
aggregation output is deterministic text — golden-comparable without
normalisation.
"""

from __future__ import annotations

import json

from repro.telemetry import TelemetrySink, load_trace_dir, sink_path
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.report import chrome_trace, render_report, summarize

MS = 1_000_000


def _span(worker, span, parent, name, start_ms, dur_ms, **attrs):
    return {
        "kind": "span", "name": name, "trace": "t0", "span": span,
        "parent": parent, "worker": worker, "start_ns": start_ms * MS,
        "dur_ns": dur_ms * MS, "attrs": attrs,
    }


def _event(worker, name, at_ms, **attrs):
    return {
        "kind": "event", "name": name, "trace": "t0", "worker": worker,
        "ns": at_ms * MS, "attrs": attrs,
    }


def _counter(worker, name, count, total_ms):
    return {
        "kind": "counter", "name": name, "trace": "t0", "worker": worker,
        "count": count, "total_ns": total_ms * MS,
    }


def synthetic_trace(directory):
    """A 2-worker campaign shape: executor drain, one job per worker."""
    main = TelemetrySink(sink_path(directory, "main"), worker="main")
    main.append(_span("main", "main:2", "main:1", "executor.drain", 10, 100))
    main.append(_span("main", "main:1", None, "executor.run", 5, 110))
    w0 = TelemetrySink(sink_path(directory, "worker-0"), worker="worker-0")
    w0.append(_event("worker-0", "scheduler.claim", 21, job_id="j0"))
    w0.append(_span("worker-0", "worker-0:2", "worker-0:1", "job", 20, 60,
                    job_id="j0", attack="gradmaxsearch", budget=3))
    w0.append(_span("worker-0", "worker-0:1", "main:2", "worker.run", 15, 90))
    w0.append(_counter("worker-0", "kernels.toggle_batch", 40, 12))
    w1 = TelemetrySink(sink_path(directory, "worker-1"), worker="worker-1")
    w1.append(_event("worker-1", "scheduler.claim", 26, job_id="j1"))
    w1.append(_span("worker-1", "worker-1:2", "worker-1:1", "job", 25, 30,
                    job_id="j1", attack="gradmaxsearch", budget=3))
    w1.append(_span("worker-1", "worker-1:1", "main:2", "worker.run", 18, 45))
    w1.append(_counter("worker-1", "kernels.toggle_batch", 10, 3))
    for sink in (main, w0, w1):
        sink.close()


class TestSummarize:
    def test_counts_and_phases(self, tmp_path):
        synthetic_trace(tmp_path)
        summary = summarize(load_trace_dir(tmp_path))
        assert summary["spans"] == 6
        assert summary["events"] == 2
        assert summary["counter_records"] == 2
        phases = {row["name"]: row for row in summary["phases"]}
        assert phases["job"]["count"] == 2
        assert phases["job"]["max_ms"] == 60.0
        assert phases["executor.run"]["total_s"] == 0.11

    def test_workers_and_jobs(self, tmp_path):
        synthetic_trace(tmp_path)
        summary = summarize(load_trace_dir(tmp_path))
        workers = {row["worker"]: row for row in summary["workers"]}
        assert workers["worker-0"]["jobs"] == 1
        assert workers["worker-0"]["events"] == 1
        jobs = summary["jobs"]
        assert [j["job_id"] for j in jobs] == ["j0", "j1"]  # by -duration
        assert jobs[0]["worker"] == "worker-0"

    def test_counters_summed_across_workers(self, tmp_path):
        synthetic_trace(tmp_path)
        summary = summarize(load_trace_dir(tmp_path))
        (row,) = summary["counters"]
        assert row["name"] == "kernels.toggle_batch"
        assert row["count"] == 50
        assert row["total_ms"] == 15.0

    def test_critical_path_crosses_processes(self, tmp_path):
        synthetic_trace(tmp_path)
        summary = summarize(load_trace_dir(tmp_path))
        path = [step["name"] for step in summary["critical_path"]]
        # main's executor spans, then the latest-finishing worker chain
        assert path == ["executor.run", "executor.drain", "worker.run", "job"]
        assert summary["critical_path"][2]["worker"] == "worker-0"


class TestRender:
    def test_report_sections_render(self, tmp_path):
        synthetic_trace(tmp_path)
        text = render_report(summarize(load_trace_dir(tmp_path)))
        assert "telemetry report: 6 spans, 2 events, 2 counter records" in text
        assert "per-phase (by span name):" in text
        assert "per-worker:" in text
        assert "slowest jobs" in text
        assert "counters:" in text
        assert "critical path" in text
        # the critical path renders as an indented tree
        assert "\n    executor.drain" in text
        assert "\n      worker.run" in text


class TestChromeTrace:
    def test_export_shape(self, tmp_path):
        synthetic_trace(tmp_path)
        trace = chrome_trace(load_trace_dir(tmp_path))
        assert trace["displayTimeUnit"] == "ms"
        kinds = {}
        for entry in trace["traceEvents"]:
            kinds[entry["ph"]] = kinds.get(entry["ph"], 0) + 1
        assert kinds == {"M": 3, "X": 6, "i": 2}
        # timestamps rebase to the earliest record at 0, in microseconds
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        run = next(e for e in xs if e["name"] == "executor.run")
        assert run["dur"] == 110_000.0
        # one tid per worker, named through metadata records
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"] if e["ph"] == "M"
        }
        assert sorted(names.values()) == ["main", "worker-0", "worker-1"]

    def test_export_is_json_serialisable(self, tmp_path):
        synthetic_trace(tmp_path)
        json.dumps(chrome_trace(load_trace_dir(tmp_path)))


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        synthetic_trace(tmp_path)
        out_json = tmp_path / "chrome.json"
        code = telemetry_main(
            ["report", str(tmp_path), "--top", "1", "--chrome", str(out_json)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry report: 6 spans" in out
        assert "slowest jobs (top 1):" in out
        assert "j0" in out and "j1" not in out.split("counters:")[0]
        assert "chrome trace written" in out
        exported = json.loads(out_json.read_text())
        assert len(exported["traceEvents"]) == 11

    def test_empty_dir_fails_cleanly(self, tmp_path, capsys):
        code = telemetry_main(["report", str(tmp_path)])
        assert code == 1
        assert "no telemetry events" in capsys.readouterr().out

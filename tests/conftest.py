"""Shared fixtures for the test suite.

Beyond the small deterministic graphs, this hosts the fixtures the
campaign/executor/scheduler/store suites used to duplicate per-module:
the 90-node BA campaign graph with its OddBall target ranking, the
gradmaxsearch sweep-grid factory, the outcome bit-identity assertion,
and the cached blogcatalog store build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.graph import Graph


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_er_graph() -> Graph:
    """Connected-ish 40-node ER graph, deterministic."""
    return erdos_renyi(40, 0.15, rng=7)


@pytest.fixture()
def small_ba_graph() -> Graph:
    """60-node BA graph (m=3), deterministic and connected."""
    return barabasi_albert(60, 3, rng=11)


@pytest.fixture()
def star_graph() -> Graph:
    """Star on 8 nodes: node 0 is the hub."""
    return Graph.from_edges(8, [(0, i) for i in range(1, 8)])


@pytest.fixture()
def clique_graph() -> Graph:
    """K5 plus a pendant path so degrees differ."""
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    edges += [(4, 5), (5, 6)]
    return Graph.from_edges(7, edges)


@pytest.fixture()
def triangle_graph() -> Graph:
    """A single triangle."""
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="session")
def campaign_graph() -> Graph:
    """The 90-node BA graph every campaign-layer suite attacks."""
    return barabasi_albert(90, 3, rng=11)


@pytest.fixture(scope="session")
def campaign_targets(campaign_graph) -> "list[int]":
    """Top-8 OddBall-scored nodes of ``campaign_graph``.

    ``top_k`` is prefix-stable, so suites that want fewer targets slice
    this list instead of re-running the detector per module.
    """
    from repro.oddball.detector import OddBall

    return OddBall().analyze(campaign_graph).top_k(8).tolist()


@pytest.fixture(scope="module")
def graph_and_targets(campaign_graph, campaign_targets):
    """(graph, targets) pair matching the historical per-module fixtures."""
    return campaign_graph, campaign_targets


@pytest.fixture(scope="session")
def sweep_jobs():
    """Factory for the single-target gradmaxsearch grids the suites sweep."""
    from repro.attacks import grid_jobs

    def make(targets, count=8, budget=3, **params):
        params.setdefault("candidates", "target_incident")
        return grid_jobs(
            "gradmaxsearch", [[int(t)] for t in targets[:count]],
            budgets=[budget], **params,
        )

    return make


@pytest.fixture(scope="session")
def assert_outcomes_identical():
    """Bit-identity check between two campaign results (any executor)."""

    def check(a_result, b_result):
        assert len(a_result) == len(b_result)
        for a, b in zip(a_result, b_result):
            assert a.job_id == b.job_id
            assert a.flips_by_budget == b.flips_by_budget
            assert a.surrogate_by_budget == b.surrogate_by_budget
            assert a.rank_shifts == b.rank_shifts
            assert a.score_before == b.score_before
            assert a.score_after == b.score_after

    return check


@pytest.fixture(scope="session")
def store(tmp_path_factory):
    """A cached 0.3-scale blogcatalog store (built once per session)."""
    from repro.store import build_store

    cache = tmp_path_factory.mktemp("shared-store-cache")
    return build_store("blogcatalog", cache_dir=cache, scale=0.3, seed=11)

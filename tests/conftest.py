"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.graph import Graph


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_er_graph() -> Graph:
    """Connected-ish 40-node ER graph, deterministic."""
    return erdos_renyi(40, 0.15, rng=7)


@pytest.fixture()
def small_ba_graph() -> Graph:
    """60-node BA graph (m=3), deterministic and connected."""
    return barabasi_albert(60, 3, rng=11)


@pytest.fixture()
def star_graph() -> Graph:
    """Star on 8 nodes: node 0 is the hub."""
    return Graph.from_edges(8, [(0, i) for i in range(1, 8)])


@pytest.fixture()
def clique_graph() -> Graph:
    """K5 plus a pendant path so degrees differ."""
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    edges += [(4, 5), (5, 6)]
    return Graph.from_edges(7, edges)


@pytest.fixture()
def triangle_graph() -> Graph:
    """A single triangle."""
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])

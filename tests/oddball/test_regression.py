"""Tests for the power-law OLS fit (numpy oracle + differentiable version)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor
from repro.oddball.regression import (
    PowerLawFit,
    fit_power_law,
    fit_power_law_tensor,
    predict_log_e,
)


def _lstsq_oracle(x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
    design = np.column_stack([np.ones_like(x), x])
    beta, *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(beta[0]), float(beta[1])


class TestFitPowerLaw:
    def test_matches_lstsq(self):
        rng = np.random.default_rng(0)
        n = rng.integers(2, 40, size=50).astype(float)
        e = n ** 1.4 * np.exp(rng.normal(0, 0.1, size=50))
        fit = fit_power_law(n, e, ridge=0.0)
        b0, b1 = _lstsq_oracle(np.log(n), np.log(e))
        assert fit.beta0 == pytest.approx(b0, abs=1e-8)
        assert fit.beta1 == pytest.approx(b1, abs=1e-8)

    def test_recovers_exact_power_law(self):
        n = np.array([2.0, 4.0, 8.0, 16.0])
        e = 3.0 * n**1.5
        fit = fit_power_law(n, e, ridge=0.0)
        assert fit.beta0 == pytest.approx(np.log(3.0))
        assert fit.beta1 == pytest.approx(1.5)

    def test_default_mask_excludes_isolated(self):
        n = np.array([0.0, 2.0, 4.0, 8.0])
        e = np.array([0.0, 4.0, 16.0, 64.0])
        fit = fit_power_law(n, e, ridge=0.0)
        assert fit.beta1 == pytest.approx(2.0)

    def test_explicit_mask(self):
        n = np.array([2.0, 4.0, 100.0])
        e = np.array([4.0, 16.0, 1.0])  # third point is junk
        fit = fit_power_law(n, e, mask=np.array([True, True, False]), ridge=0.0)
        assert fit.beta1 == pytest.approx(2.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([2.0]), np.array([4.0]))

    def test_misaligned_shapes(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0]))

    def test_degenerate_identical_x_is_finite_with_ridge(self):
        n = np.full(10, 4.0)
        e = np.linspace(2, 8, 10)
        fit = fit_power_law(n, e)  # default ridge
        assert np.isfinite(fit.beta0) and np.isfinite(fit.beta1)

    def test_predict_e(self):
        fit = PowerLawFit(beta0=np.log(2.0), beta1=1.0)
        np.testing.assert_allclose(fit.predict_e(np.array([1.0, 3.0])), [2.0, 6.0])


class TestFitPowerLawTensor:
    def test_matches_numpy_version(self):
        rng = np.random.default_rng(1)
        log_n = rng.uniform(0.5, 3.0, size=30)
        log_e = 0.3 + 1.6 * log_n + rng.normal(0, 0.05, size=30)
        beta0_t, beta1_t = fit_power_law_tensor(Tensor(log_n), Tensor(log_e), ridge=0.0)
        b0, b1 = _lstsq_oracle(log_n, log_e)
        assert float(beta0_t.data) == pytest.approx(b0, abs=1e-8)
        assert float(beta1_t.data) == pytest.approx(b1, abs=1e-8)

    def test_gradients_flow_to_both_inputs(self):
        log_n = np.array([0.5, 1.0, 1.5, 2.0])
        log_e = np.array([1.0, 1.8, 2.9, 4.1])

        def fn(x, y):
            beta0, beta1 = fit_power_law_tensor(x, y)
            return beta0 * 2.0 + beta1 * 3.0

        assert gradcheck(fn, [log_n, log_e])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 20))
    def test_betas_differentiable_random(self, size):
        rng = np.random.default_rng(size)
        log_n = rng.uniform(0.2, 2.0, size=size)
        log_e = rng.uniform(0.2, 4.0, size=size)

        def fn(x, y):
            beta0, beta1 = fit_power_law_tensor(x, y)
            return (y - predict_log_e(beta0, beta1, x)) ** 2

        assert gradcheck(fn, [log_n, log_e], atol=1e-3, rtol=1e-3)

    def test_predict_log_e(self):
        rho = predict_log_e(Tensor(1.0), Tensor(2.0), Tensor(np.array([0.0, 1.0])))
        np.testing.assert_allclose(rho.data, [1.0, 3.0])

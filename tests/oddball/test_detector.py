"""Tests for the OddBall detector facade."""

import numpy as np
import pytest

from repro.graph.anomaly import inject_near_star
from repro.graph.generators import erdos_renyi
from repro.oddball.detector import OddBall


class TestAnalyze:
    def test_report_fields(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        n = small_er_graph.number_of_nodes
        assert report.scores.shape == (n,)
        assert report.n_feature.shape == (n,)
        assert report.e_feature.shape == (n,)
        assert np.isfinite(report.scores).all()

    def test_accepts_raw_adjacency(self, small_er_graph):
        report_graph = OddBall().analyze(small_er_graph)
        report_matrix = OddBall().analyze(small_er_graph.adjacency)
        np.testing.assert_allclose(report_graph.scores, report_matrix.scores)

    def test_top_k_order(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        top = report.top_k(5)
        scores = report.scores[top]
        assert (np.diff(scores) <= 1e-12).all()

    def test_top_k_validation(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        with pytest.raises(ValueError):
            report.top_k(-1)
        assert len(report.top_k(0)) == 0

    def test_rank_of_consistent_with_top_k(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        best = int(report.top_k(1)[0])
        assert report.rank_of(best) == 0

    def test_target_score_sum(self, small_er_graph):
        detector = OddBall()
        report = detector.analyze(small_er_graph)
        targets = [0, 1, 2]
        expected = float(report.scores[targets].sum())
        assert detector.target_score_sum(small_er_graph, targets) == pytest.approx(expected)


class TestEstimators:
    @pytest.mark.parametrize("estimator", ["ols", "huber", "ransac"])
    def test_all_estimators_run(self, estimator, small_er_graph):
        detector = OddBall(estimator=estimator, rng=0)
        scores = detector.scores(small_er_graph)
        assert np.isfinite(scores).all()

    def test_planted_star_found_by_all(self):
        g = erdos_renyi(120, 0.05, rng=0)
        inject_near_star(g, 4, n_leaves=40, rng=1)
        for estimator in ("ols", "huber", "ransac"):
            report = OddBall(estimator=estimator, rng=0).analyze(g)
            assert report.rank_of(4) < 10


class TestLabelAnomalies:
    def test_fraction_labels_count(self, small_er_graph):
        labels = OddBall().label_anomalies(small_er_graph, fraction=0.1)
        assert labels.sum() == max(int(round(0.1 * small_er_graph.number_of_nodes)), 1)
        assert set(np.unique(labels)) <= {0, 1}

    def test_threshold_labels(self, small_er_graph):
        detector = OddBall()
        scores = detector.scores(small_er_graph)
        labels = detector.label_anomalies(small_er_graph, threshold=float(np.median(scores)))
        assert labels.sum() >= 1

    def test_exactly_one_mode_required(self, small_er_graph):
        detector = OddBall()
        with pytest.raises(ValueError):
            detector.label_anomalies(small_er_graph)
        with pytest.raises(ValueError):
            detector.label_anomalies(small_er_graph, fraction=0.1, threshold=1.0)

    def test_fraction_bounds(self, small_er_graph):
        with pytest.raises(ValueError):
            OddBall().label_anomalies(small_er_graph, fraction=1.5)


class TestReportOrderingCache:
    """top_k/rank_of are backed by a lazily-cached argsort (regression for
    the per-call re-sort) — repeated calls and ties must stay consistent."""

    def test_repeated_calls_identical(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        first = report.top_k(10)
        second = report.top_k(10)
        np.testing.assert_array_equal(first, second)
        assert [report.rank_of(i) for i in range(5)] == [
            report.rank_of(i) for i in range(5)
        ]

    def test_argsort_runs_once(self, small_ba_graph, monkeypatch):
        report = OddBall().analyze(small_ba_graph)
        calls = []
        original = np.argsort

        def counting_argsort(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(np, "argsort", counting_argsort)
        report.top_k(3)
        report.rank_of(0)
        report.top_k(7)
        report.rank_of(4)
        assert len(calls) == 1

    def test_ties_resolve_stably_by_node_id(self):
        from repro.oddball.detector import DetectionReport
        from repro.oddball.regression import PowerLawFit

        scores = np.array([1.0, 3.0, 3.0, 0.5, 3.0])
        report = DetectionReport(
            scores=scores,
            n_feature=np.ones(5),
            e_feature=np.ones(5),
            fit=PowerLawFit(beta0=0.0, beta1=1.0),
        )
        np.testing.assert_array_equal(report.top_k(5), [1, 2, 4, 0, 3])
        assert report.rank_of(1) == 0
        assert report.rank_of(2) == 1
        assert report.rank_of(4) == 2
        assert report.rank_of(0) == 3
        assert report.rank_of(3) == 4

    def test_rank_of_matches_top_k_for_every_node(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        order = report.top_k(len(report.scores))
        for rank, node in enumerate(order.tolist()):
            assert report.rank_of(node) == rank

    def test_top_k_result_is_writable_copy(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        first = report.top_k(3)
        first[0] = -1  # mutating the caller's copy must not corrupt the cache
        np.testing.assert_array_equal(report.top_k(3), report.top_k(3))
        assert report.top_k(3)[0] != -1


class TestRankOfBounds:
    def test_negative_node_rejected(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        with pytest.raises(IndexError, match="out of range"):
            report.rank_of(-1)

    def test_too_large_node_rejected(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        with pytest.raises(IndexError, match="out of range"):
            report.rank_of(len(report.scores))

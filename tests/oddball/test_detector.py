"""Tests for the OddBall detector facade."""

import numpy as np
import pytest

from repro.graph.anomaly import inject_near_star
from repro.graph.generators import erdos_renyi
from repro.oddball.detector import OddBall


class TestAnalyze:
    def test_report_fields(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        n = small_er_graph.number_of_nodes
        assert report.scores.shape == (n,)
        assert report.n_feature.shape == (n,)
        assert report.e_feature.shape == (n,)
        assert np.isfinite(report.scores).all()

    def test_accepts_raw_adjacency(self, small_er_graph):
        report_graph = OddBall().analyze(small_er_graph)
        report_matrix = OddBall().analyze(small_er_graph.adjacency)
        np.testing.assert_allclose(report_graph.scores, report_matrix.scores)

    def test_top_k_order(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        top = report.top_k(5)
        scores = report.scores[top]
        assert (np.diff(scores) <= 1e-12).all()

    def test_top_k_validation(self, small_er_graph):
        report = OddBall().analyze(small_er_graph)
        with pytest.raises(ValueError):
            report.top_k(-1)
        assert len(report.top_k(0)) == 0

    def test_rank_of_consistent_with_top_k(self, small_ba_graph):
        report = OddBall().analyze(small_ba_graph)
        best = int(report.top_k(1)[0])
        assert report.rank_of(best) == 0

    def test_target_score_sum(self, small_er_graph):
        detector = OddBall()
        report = detector.analyze(small_er_graph)
        targets = [0, 1, 2]
        expected = float(report.scores[targets].sum())
        assert detector.target_score_sum(small_er_graph, targets) == pytest.approx(expected)


class TestEstimators:
    @pytest.mark.parametrize("estimator", ["ols", "huber", "ransac"])
    def test_all_estimators_run(self, estimator, small_er_graph):
        detector = OddBall(estimator=estimator, rng=0)
        scores = detector.scores(small_er_graph)
        assert np.isfinite(scores).all()

    def test_planted_star_found_by_all(self):
        g = erdos_renyi(120, 0.05, rng=0)
        inject_near_star(g, 4, n_leaves=40, rng=1)
        for estimator in ("ols", "huber", "ransac"):
            report = OddBall(estimator=estimator, rng=0).analyze(g)
            assert report.rank_of(4) < 10


class TestLabelAnomalies:
    def test_fraction_labels_count(self, small_er_graph):
        labels = OddBall().label_anomalies(small_er_graph, fraction=0.1)
        assert labels.sum() == max(int(round(0.1 * small_er_graph.number_of_nodes)), 1)
        assert set(np.unique(labels)) <= {0, 1}

    def test_threshold_labels(self, small_er_graph):
        detector = OddBall()
        scores = detector.scores(small_er_graph)
        labels = detector.label_anomalies(small_er_graph, threshold=float(np.median(scores)))
        assert labels.sum() >= 1

    def test_exactly_one_mode_required(self, small_er_graph):
        detector = OddBall()
        with pytest.raises(ValueError):
            detector.label_anomalies(small_er_graph)
        with pytest.raises(ValueError):
            detector.label_anomalies(small_er_graph, fraction=0.1, threshold=1.0)

    def test_fraction_bounds(self, small_er_graph):
        with pytest.raises(ValueError):
            OddBall().label_anomalies(small_er_graph, fraction=1.5)

"""Tests for Huber and RANSAC robust estimators."""

import numpy as np
import pytest

from repro.oddball.regression import fit_power_law
from repro.oddball.robust import fit_huber, fit_ransac, fit_with_estimator


def _contaminated_sample(rng, n_points=60, n_outliers=8):
    """Power law E = N^1.5 with a handful of gross outliers."""
    n = rng.uniform(2.0, 40.0, size=n_points)
    e = n**1.5 * np.exp(rng.normal(0, 0.02, size=n_points))
    e[:n_outliers] = n[:n_outliers] ** 1.5 * 40.0  # contaminate
    return n, e


class TestHuber:
    def test_clean_data_matches_ols(self):
        rng = np.random.default_rng(0)
        n = rng.uniform(2.0, 30.0, size=80)
        e = 2.0 * n**1.3
        huber = fit_huber(n, e)
        ols = fit_power_law(n, e, ridge=0.0)
        assert huber.beta1 == pytest.approx(ols.beta1, abs=1e-3)

    def test_more_robust_than_ols(self):
        rng = np.random.default_rng(1)
        n, e = _contaminated_sample(rng)
        huber = fit_huber(n, e)
        ols = fit_power_law(n, e, ridge=0.0)
        assert abs(huber.beta1 - 1.5) < abs(ols.beta1 - 1.5) + 1e-9
        assert abs(huber.beta0) < abs(ols.beta0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            fit_huber(np.array([2.0, 3.0]), np.array([2.0, 3.0]), k=0.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_huber(np.array([2.0]), np.array([2.0]))


class TestRansac:
    def test_ignores_outliers(self):
        rng = np.random.default_rng(2)
        n, e = _contaminated_sample(rng)
        ransac = fit_ransac(n, e, rng=0)
        assert ransac.beta1 == pytest.approx(1.5, abs=0.1)
        assert ransac.beta0 == pytest.approx(0.0, abs=0.3)

    def test_deterministic_given_rng(self):
        rng = np.random.default_rng(3)
        n, e = _contaminated_sample(rng)
        a = fit_ransac(n, e, rng=42)
        b = fit_ransac(n, e, rng=42)
        assert a == b

    def test_degenerate_fallback(self):
        """All-identical x cannot anchor a two-point line: falls back to OLS."""
        n = np.full(10, 4.0)
        e = np.linspace(2.0, 12.0, 10)
        fit = fit_ransac(n, e, rng=0)
        assert np.isfinite(fit.beta0) and np.isfinite(fit.beta1)


class TestDispatch:
    @pytest.mark.parametrize("name", ["ols", "huber", "ransac"])
    def test_known_estimators(self, name):
        rng = np.random.default_rng(4)
        n = rng.uniform(2.0, 20.0, size=40)
        e = n**1.4
        fit = fit_with_estimator(n, e, estimator=name, rng=0)
        assert fit.beta1 == pytest.approx(1.4, abs=0.15)

    def test_unknown_estimator(self):
        with pytest.raises(ValueError):
            fit_with_estimator(np.array([2.0, 3.0]), np.array([2.0, 3.0]), estimator="magic")

    def test_case_insensitive(self):
        rng = np.random.default_rng(5)
        n = rng.uniform(2.0, 20.0, size=30)
        fit = fit_with_estimator(n, n**1.2, estimator="HUBER")
        assert fit.beta1 == pytest.approx(1.2, abs=0.1)

"""Tests for the differentiable attack objective."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.oddball.surrogate import (
    adjacency_gradient,
    log_features,
    surrogate_loss,
    surrogate_loss_numpy,
    target_residuals,
)


class TestLogFeatures:
    def test_values_match_direct_computation(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        n, e, log_n, log_e = log_features(Tensor(adjacency))
        np.testing.assert_allclose(log_n.data, np.log(np.maximum(n.data, 1.0)))
        np.testing.assert_allclose(log_e.data, np.log(np.maximum(e.data, 1.0)))

    def test_floor_guards_singletons(self):
        adjacency = np.zeros((3, 3))
        _, _, log_n, log_e = log_features(Tensor(adjacency), floor=1.0)
        np.testing.assert_allclose(log_n.data, np.zeros(3))
        np.testing.assert_allclose(log_e.data, np.zeros(3))

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            log_features(Tensor(np.zeros((2, 2))), floor=0.0)


class TestSurrogateLoss:
    def test_scalar_non_negative(self, small_er_graph):
        loss = surrogate_loss(Tensor(small_er_graph.adjacency), [0, 1])
        assert loss.data.size == 1
        assert float(loss.data) >= 0.0

    def test_matches_manual_residuals(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [2, 5, 7]
        residuals = target_residuals(Tensor(adjacency), targets)
        loss = surrogate_loss(Tensor(adjacency), targets)
        assert float(loss.data) == pytest.approx(float((residuals.data**2).sum()))

    def test_target_validation(self, small_er_graph):
        adjacency = Tensor(small_er_graph.adjacency)
        with pytest.raises(ValueError, match="empty"):
            surrogate_loss(adjacency, [])
        with pytest.raises(ValueError, match="unique"):
            surrogate_loss(adjacency, [1, 1])
        with pytest.raises(ValueError, match="range"):
            surrogate_loss(adjacency, [1000])

    def test_numpy_wrapper_matches(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [0, 3]
        assert surrogate_loss_numpy(adjacency, targets) == pytest.approx(
            float(surrogate_loss(Tensor(adjacency), targets).data)
        )


class TestAdjacencyGradient:
    def test_symmetric_zero_diagonal(self, small_er_graph):
        grad = adjacency_gradient(small_er_graph.adjacency, [0, 1])
        np.testing.assert_allclose(grad, grad.T)
        np.testing.assert_allclose(np.diagonal(grad), 0.0)

    def test_matches_finite_difference_on_pair(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [0, 4]
        grad = adjacency_gradient(adjacency, targets)
        eps = 1e-5
        for (i, j) in [(2, 7), (0, 9), (5, 6)]:
            plus, minus = adjacency.copy(), adjacency.copy()
            plus[i, j] += eps
            plus[j, i] += eps
            minus[i, j] -= eps
            minus[j, i] -= eps
            numeric = (
                surrogate_loss_numpy(plus, targets) - surrogate_loss_numpy(minus, targets)
            ) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_gradient_identifies_improving_flip(self, small_ba_graph):
        """Flipping the most negative-gradient non-edge decreases the loss."""
        from repro.oddball.detector import OddBall

        adjacency = small_ba_graph.adjacency
        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        before = surrogate_loss_numpy(adjacency, targets)
        grad = adjacency_gradient(adjacency, targets)
        masked = np.where(adjacency == 0.0, grad, np.inf)
        np.fill_diagonal(masked, np.inf)
        i, j = np.unravel_index(int(np.argmin(masked)), masked.shape)
        if masked[i, j] < 0:  # an improving addition exists
            poisoned = adjacency.copy()
            poisoned[i, j] = poisoned[j, i] = 1.0
            assert surrogate_loss_numpy(poisoned, targets) < before

"""Tests for the differentiable attack objective."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.oddball.surrogate import (
    adjacency_gradient,
    log_features,
    surrogate_loss,
    surrogate_loss_numpy,
    target_residuals,
)


class TestLogFeatures:
    def test_values_match_direct_computation(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        n, e, log_n, log_e = log_features(Tensor(adjacency))
        np.testing.assert_allclose(log_n.data, np.log(np.maximum(n.data, 1.0)))
        np.testing.assert_allclose(log_e.data, np.log(np.maximum(e.data, 1.0)))

    def test_floor_guards_singletons(self):
        adjacency = np.zeros((3, 3))
        _, _, log_n, log_e = log_features(Tensor(adjacency), floor=1.0)
        np.testing.assert_allclose(log_n.data, np.zeros(3))
        np.testing.assert_allclose(log_e.data, np.zeros(3))

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            log_features(Tensor(np.zeros((2, 2))), floor=0.0)


class TestSurrogateLoss:
    def test_scalar_non_negative(self, small_er_graph):
        loss = surrogate_loss(Tensor(small_er_graph.adjacency), [0, 1])
        assert loss.data.size == 1
        assert float(loss.data) >= 0.0

    def test_matches_manual_residuals(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [2, 5, 7]
        residuals = target_residuals(Tensor(adjacency), targets)
        loss = surrogate_loss(Tensor(adjacency), targets)
        assert float(loss.data) == pytest.approx(float((residuals.data**2).sum()))

    def test_target_validation(self, small_er_graph):
        adjacency = Tensor(small_er_graph.adjacency)
        with pytest.raises(ValueError, match="empty"):
            surrogate_loss(adjacency, [])
        with pytest.raises(ValueError, match="unique"):
            surrogate_loss(adjacency, [1, 1])
        with pytest.raises(ValueError, match="range"):
            surrogate_loss(adjacency, [1000])

    def test_numpy_wrapper_matches(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [0, 3]
        assert surrogate_loss_numpy(adjacency, targets) == pytest.approx(
            float(surrogate_loss(Tensor(adjacency), targets).data)
        )

    def test_numpy_wrapper_accepts_scipy_sparse(self, small_er_graph):
        """Regression: ``np.asarray`` used to wrap a sparse matrix in a 0-d
        object array instead of densifying — CSR is now evaluated natively."""
        from scipy import sparse

        adjacency = small_er_graph.adjacency
        targets = [0, 3]
        dense_loss = surrogate_loss_numpy(adjacency, targets)
        sparse_loss = surrogate_loss_numpy(sparse.csr_matrix(adjacency), targets)
        assert sparse_loss == dense_loss

    def test_numpy_wrapper_sparse_honours_floor_and_weights(self, small_er_graph):
        from scipy import sparse

        adjacency = small_er_graph.adjacency
        targets = [0, 3]
        weights = [2.0, 0.5]
        assert surrogate_loss_numpy(
            sparse.csr_matrix(adjacency), targets, weights, floor=2.0
        ) == pytest.approx(
            surrogate_loss_numpy(adjacency, targets, weights, floor=2.0), rel=1e-12
        )


class TestAdjacencyGradient:
    def test_symmetric_zero_diagonal(self, small_er_graph):
        grad = adjacency_gradient(small_er_graph.adjacency, [0, 1])
        np.testing.assert_allclose(grad, grad.T)
        np.testing.assert_allclose(np.diagonal(grad), 0.0)

    def test_matches_finite_difference_on_pair(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [0, 4]
        grad = adjacency_gradient(adjacency, targets)
        eps = 1e-5
        for (i, j) in [(2, 7), (0, 9), (5, 6)]:
            plus, minus = adjacency.copy(), adjacency.copy()
            plus[i, j] += eps
            plus[j, i] += eps
            minus[i, j] -= eps
            minus[j, i] -= eps
            numeric = (
                surrogate_loss_numpy(plus, targets) - surrogate_loss_numpy(minus, targets)
            ) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_gradient_identifies_improving_flip(self, small_ba_graph):
        """Flipping the most negative-gradient non-edge decreases the loss."""
        from repro.oddball.detector import OddBall

        adjacency = small_ba_graph.adjacency
        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        before = surrogate_loss_numpy(adjacency, targets)
        grad = adjacency_gradient(adjacency, targets)
        masked = np.where(adjacency == 0.0, grad, np.inf)
        np.fill_diagonal(masked, np.inf)
        i, j = np.unravel_index(int(np.argmin(masked)), masked.shape)
        if masked[i, j] < 0:  # an improving addition exists
            poisoned = adjacency.copy()
            poisoned[i, j] = poisoned[j, i] = 1.0
            assert surrogate_loss_numpy(poisoned, targets) < before


class TestTargetsConsumedOnce:
    """Regression: ``targets`` used to be consumed twice, so a one-shot
    generator exhausted in ``target_residuals`` left the weight validation
    seeing zero targets."""

    def test_generator_targets_with_weights(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        expected = surrogate_loss_numpy(adjacency, [2, 5, 7], weights=[1.0, 2.0, 0.5])
        got = surrogate_loss_numpy(
            adjacency, (t for t in [2, 5, 7]), weights=[1.0, 2.0, 0.5]
        )
        assert got == expected

    def test_generator_targets_tensor_path(self, small_er_graph):
        tensor = Tensor(small_er_graph.adjacency)
        expected = float(surrogate_loss(tensor, [2, 5], weights=[1.0, 3.0]).data)
        got = float(
            surrogate_loss(tensor, iter([2, 5]), weights=[1.0, 3.0]).data
        )
        assert got == expected

    def test_generator_targets_gradient_path(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        expected = adjacency_gradient(adjacency, [1, 4], weights=[2.0, 1.0])
        got = adjacency_gradient(adjacency, iter([1, 4]), weights=[2.0, 1.0])
        np.testing.assert_array_equal(got, expected)


class TestSurrogateLossNumpyFloor:
    """Regression: the numpy evaluation hard-coded ``floor=1.0``."""

    def test_floor_is_plumbed_through(self):
        # a graph with a degree-1 node so the clamp actually bites
        adjacency = np.zeros((5, 5))
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]:
            adjacency[u, v] = adjacency[v, u] = 1.0
        adjacency[3, 4] = adjacency[4, 3] = 1.0  # node 4 has degree 1
        targets = [0, 4]
        # floor=2.0 clamps the degree-1 node's features (N=1 < 2)
        at_two = surrogate_loss_numpy(adjacency, targets, floor=2.0)
        at_one = surrogate_loss_numpy(adjacency, targets, floor=1.0)
        assert at_two != at_one
        expected = float(
            surrogate_loss(Tensor(adjacency), targets, floor=2.0).data
        )
        assert at_two == expected


class TestFeaturePath:
    def test_loss_from_features_matches_dense(self, small_ba_graph):
        from repro.graph.features import egonet_features
        from repro.oddball.surrogate import surrogate_loss_from_features

        adjacency = small_ba_graph.adjacency
        targets = [0, 7, 13]
        n_feature, e_feature = egonet_features(adjacency)
        for floor in (1.0, 0.5):
            for weights in (None, [1.0, 2.0, 0.5]):
                got = surrogate_loss_from_features(
                    n_feature, e_feature, targets, floor=floor, weights=weights
                )
                expected = surrogate_loss_numpy(
                    adjacency, targets, weights, floor=floor
                )
                assert got == expected  # bit-for-bit, not approx

    def test_feature_gradients_match_autograd(self, small_ba_graph):
        """(∂L/∂N, ∂L/∂E) composed into pair gradients equals autograd."""
        from repro.oddball.surrogate import adjacency_gradient

        adjacency = small_ba_graph.adjacency
        n = adjacency.shape[0]
        targets = [0, 7]
        rows, cols = np.triu_indices(n, k=1)
        for floor in (1.0, 0.5):
            dense = adjacency_gradient(adjacency, targets, floor=floor)
            scattered = adjacency_gradient(
                adjacency, targets, floor=floor, candidates=(rows, cols)
            )
            np.testing.assert_allclose(
                scattered, dense[rows, cols], rtol=1e-9, atol=1e-12
            )


class TestCandidateGradient:
    def test_subset_matches_dense_entries(self, small_er_graph):
        from repro.attacks.candidates import CandidateSet

        adjacency = small_er_graph.adjacency
        targets = [3, 9]
        candidate_set = CandidateSet.target_incident(adjacency.shape[0], targets)
        dense = adjacency_gradient(adjacency, targets)
        scattered = adjacency_gradient(adjacency, targets, candidates=candidate_set)
        np.testing.assert_allclose(
            scattered,
            dense[candidate_set.rows, candidate_set.cols],
            rtol=1e-9,
            atol=1e-12,
        )

    def test_weighted_subset_matches_dense_entries(self, small_er_graph):
        adjacency = small_er_graph.adjacency
        targets = [3, 9]
        weights = [2.0, 0.25]
        rows = np.array([0, 1, 5])
        cols = np.array([4, 2, 30])
        dense = adjacency_gradient(adjacency, targets, weights=weights)
        scattered = adjacency_gradient(
            adjacency, targets, weights=weights, candidates=(rows, cols)
        )
        np.testing.assert_allclose(scattered, dense[rows, cols], rtol=1e-9, atol=1e-12)

    def test_sparse_adjacency_and_precomputed_features(self, small_ba_graph):
        from scipy import sparse

        from repro.graph.features import egonet_features

        adjacency = small_ba_graph.adjacency
        targets = [0, 5]
        rows = np.array([0, 3])
        cols = np.array([12, 40])
        features = egonet_features(adjacency)
        from_sparse = adjacency_gradient(
            sparse.csr_matrix(adjacency),
            targets,
            candidates=(rows, cols),
            features=features,
        )
        from_dense = adjacency_gradient(adjacency, targets, candidates=(rows, cols))
        np.testing.assert_allclose(from_sparse, from_dense, rtol=1e-12)

    def test_empty_candidates(self, small_er_graph):
        out = adjacency_gradient(
            small_er_graph.adjacency,
            [0],
            candidates=(np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)),
        )
        assert out.shape == (0,)

    def test_non_canonical_candidates_rejected(self, small_er_graph):
        with pytest.raises(ValueError, match="canonical"):
            adjacency_gradient(
                small_er_graph.adjacency,
                [0],
                candidates=(np.array([3]), np.array([1])),
            )


class TestNegativeCandidateIndices:
    def test_negative_row_rejected(self, small_er_graph):
        with pytest.raises(ValueError, match="canonical"):
            adjacency_gradient(
                small_er_graph.adjacency,
                [0],
                candidates=(np.array([-3]), np.array([2])),
            )

"""Engine-parity suite: the dense autograd backend and the sparse-incremental
backend of :class:`~repro.oddball.surrogate.SurrogateEngine` must agree on
losses (bit-for-bit), gradients (to round-off) and every state-management
primitive (apply → rollback returns features to exact integer state).

This is the acceptance contract of the engine refactor: the dense backend is
the historical reference, the sparse backend is what unlocks 10k+-node
graphs — and nothing may drift between them.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.analysis import forbid_densify
from repro.attacks.candidates import CandidateSet
from repro.graph.features import egonet_features
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.oddball.detector import OddBall
from repro.oddball.surrogate import (
    AUTO_SPARSE_NODE_THRESHOLD,
    DenseSurrogateEngine,
    SparseSurrogateEngine,
    SurrogateEngine,
    resolve_backend,
    surrogate_loss_numpy,
)


def _graphs():
    return [
        barabasi_albert(60, 3, rng=11),
        erdos_renyi(50, 0.15, rng=7),
    ]


def _targets(graph, k=3):
    return OddBall().analyze(graph).top_k(k).tolist()


@pytest.fixture(params=range(2), ids=["ba60", "er50"])
def graph_and_targets(request):
    graph = _graphs()[request.param]
    return graph, _targets(graph)


@pytest.fixture(params=["full", "target_incident", "two_hop"])
def engine_pair(request, graph_and_targets):
    """(dense engine, sparse engine) over the same graph/targets/candidates."""
    graph, targets = graph_and_targets
    candidate_set = CandidateSet.build(request.param, graph, targets)
    dense = SurrogateEngine.create(graph, targets, candidate_set, backend="dense")
    sparse_eng = SurrogateEngine.create(graph, targets, candidate_set, backend="sparse")
    return dense, sparse_eng


class TestBackendResolution:
    def test_explicit_backends(self, small_ba_graph):
        assert resolve_backend("dense", small_ba_graph) == "dense"
        assert resolve_backend("sparse", small_ba_graph) == "sparse"

    def test_auto_small_dense_graph_is_dense(self, small_ba_graph):
        assert resolve_backend("auto", small_ba_graph) == "dense"

    def test_auto_sparse_input_is_sparse(self, small_ba_graph):
        csr = sparse.csr_matrix(small_ba_graph.adjacency)
        assert resolve_backend("auto", csr) == "sparse"

    def test_auto_large_graph_is_sparse(self):
        n = AUTO_SPARSE_NODE_THRESHOLD
        fake = np.zeros((n, n))
        assert resolve_backend("auto", fake) == "sparse"

    def test_unknown_backend_rejected(self, small_ba_graph):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("torch", small_ba_graph)

    def test_create_picks_backend_class(self, graph_and_targets):
        graph, targets = graph_and_targets
        assert isinstance(
            SurrogateEngine.create(graph, targets, backend="dense"),
            DenseSurrogateEngine,
        )
        assert isinstance(
            SurrogateEngine.create(graph, targets, backend="sparse"),
            SparseSurrogateEngine,
        )


class TestLossParity:
    def test_current_loss_bit_identical(self, engine_pair):
        dense, sparse_eng = engine_pair
        assert dense.current_loss() == sparse_eng.current_loss()

    def test_current_loss_matches_numpy_reference(self, graph_and_targets):
        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(graph, targets, backend="sparse")
        assert engine.current_loss() == surrogate_loss_numpy(graph.adjacency, targets)

    def test_score_flips_bit_identical(self, engine_pair):
        dense, sparse_eng = engine_pair
        flips = [
            (int(dense.rows[k]), int(dense.cols[k]))
            for k in range(0, len(dense.rows), max(1, len(dense.rows) // 5))
        ][:4]
        assert dense.score_flips(flips) == sparse_eng.score_flips(flips)

    def test_score_prefixes_bit_identical(self, engine_pair):
        dense, sparse_eng = engine_pair
        flips = [(int(dense.rows[k]), int(dense.cols[k])) for k in range(3)]
        assert dense.score_prefixes(flips) == sparse_eng.score_prefixes(flips)

    def test_weighted_targets_parity(self, graph_and_targets):
        graph, targets = graph_and_targets
        weights = [2.0, 1.0, 0.5]
        dense = SurrogateEngine.create(graph, targets, backend="dense", weights=weights)
        sparse_eng = SurrogateEngine.create(
            graph, targets, backend="sparse", weights=weights
        )
        assert dense.current_loss() == sparse_eng.current_loss()


class TestGradientParity:
    def test_binarized_step_parity(self, engine_pair):
        dense, sparse_eng = engine_pair
        rng = np.random.default_rng(0)
        zdot = rng.uniform(0.0, 1.0, size=len(dense.rows))
        dense_loss, dense_grad, dense_mask = dense.binarized_step(zdot)
        sparse_loss, sparse_grad, sparse_mask = sparse_eng.binarized_step(zdot)
        assert dense_loss == sparse_loss  # feature maintenance is exact
        np.testing.assert_array_equal(dense_mask, sparse_mask)
        np.testing.assert_allclose(sparse_grad, dense_grad, rtol=1e-8, atol=1e-9)

    def test_binarized_step_all_zero_is_clean_graph(self, engine_pair):
        dense, sparse_eng = engine_pair
        zdot = np.zeros(len(dense.rows))
        for engine in (dense, sparse_eng):
            loss, _, mask = engine.binarized_step(zdot)
            assert not mask.any()
            assert loss == engine.current_loss()

    def test_relaxed_step_parity(self, engine_pair):
        dense, sparse_eng = engine_pair
        rng = np.random.default_rng(1)
        values = rng.uniform(0.0, 1.0, size=len(dense.rows))
        dense_loss, dense_grad = dense.relaxed_step(values)
        sparse_loss, sparse_grad = sparse_eng.relaxed_step(values)
        assert sparse_loss == pytest.approx(dense_loss, rel=1e-9)
        np.testing.assert_allclose(sparse_grad, dense_grad, rtol=1e-7, atol=1e-8)

    def test_candidate_gradient_parity(self, engine_pair):
        dense, sparse_eng = engine_pair
        np.testing.assert_allclose(
            sparse_eng.candidate_gradient(),
            dense.candidate_gradient(),
            rtol=1e-8,
            atol=1e-10,
        )

    def test_candidate_gradient_after_permanent_flips(self, engine_pair):
        dense, sparse_eng = engine_pair
        flips = [(int(dense.rows[k]), int(dense.cols[k])) for k in (0, 2)]
        for engine in (dense, sparse_eng):
            for u, v in flips:
                engine.apply_flip(u, v)
        assert dense.current_loss() == sparse_eng.current_loss()
        np.testing.assert_allclose(
            sparse_eng.candidate_gradient(),
            dense.candidate_gradient(),
            rtol=1e-8,
            atol=1e-10,
        )


class TestRollbackExactness:
    def test_binarized_step_leaves_state_untouched(self, graph_and_targets):
        """apply → score → rollback must return features to exact integers."""
        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(graph, targets, backend="sparse")
        n_before, e_before = engine._features.features()
        rng = np.random.default_rng(2)
        for _ in range(5):
            zdot = rng.uniform(0.0, 1.0, size=len(engine.rows))
            engine.binarized_step(zdot)
        n_after, e_after = engine._features.features()
        np.testing.assert_array_equal(n_before, n_after)
        np.testing.assert_array_equal(e_before, e_after)
        n_ref, e_ref = egonet_features(graph.adjacency)
        np.testing.assert_array_equal(n_after, n_ref)
        np.testing.assert_array_equal(e_after, e_ref)

    def test_score_flips_restores_loss(self, engine_pair):
        for engine in engine_pair:
            before = engine.current_loss()
            flips = [(int(engine.rows[k]), int(engine.cols[k])) for k in range(4)]
            engine.score_flips(flips)
            assert engine.current_loss() == before

    def test_push_pop_roundtrip(self, engine_pair):
        for engine in engine_pair:
            u, v = int(engine.rows[0]), int(engine.cols[0])
            was_edge = engine.is_edge(u, v)
            engine.push_flip(u, v)
            assert engine.is_edge(u, v) != was_edge
            engine.pop_flips(1)
            assert engine.is_edge(u, v) == was_edge

    def test_filter_flips_engine_parity(self, engine_pair):
        from repro.attacks.constraints import filter_valid_flips_engine

        dense, sparse_eng = engine_pair
        candidates = [
            (int(dense.rows[k]), int(dense.cols[k])) for k in range(len(dense.rows))
        ][:40]
        assert filter_valid_flips_engine(dense, candidates, limit=6) == (
            filter_valid_flips_engine(sparse_eng, candidates, limit=6)
        )
        # and the filter itself rolled everything back
        assert dense.current_loss() == sparse_eng.current_loss()

    def test_filter_flips_engine_matches_dense_reference(self, graph_and_targets):
        from repro.attacks.constraints import filter_valid_flips, filter_valid_flips_engine

        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(graph, targets, backend="sparse")
        candidates = [
            (int(engine.rows[k]), int(engine.cols[k]))
            for k in range(0, len(engine.rows), 7)
        ]
        reference = filter_valid_flips(graph.adjacency, candidates, limit=5)
        assert filter_valid_flips_engine(engine, candidates, limit=5) == reference


class TestValidation:
    def test_rejects_bad_floor(self, graph_and_targets):
        graph, targets = graph_and_targets
        with pytest.raises(ValueError, match="floor"):
            SurrogateEngine.create(graph, targets, floor=0.0)

    def test_rejects_out_of_range_candidates(self, graph_and_targets):
        graph, targets = graph_and_targets
        n = graph.number_of_nodes
        rows = np.array([0], dtype=np.intp)
        cols = np.array([n + 3], dtype=np.intp)
        with pytest.raises(ValueError, match="out of range"):
            SurrogateEngine.create(graph, targets, (rows, cols), backend="dense")

    def test_rejects_bad_targets(self, graph_and_targets):
        graph, _ = graph_and_targets
        with pytest.raises(ValueError, match="target"):
            SurrogateEngine.create(graph, [], backend="sparse")

    def test_sparse_input_never_densified(self, graph_and_targets):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        with forbid_densify(context="sparse engine construction"):
            engine = SurrogateEngine.create(csr, targets)
            assert isinstance(engine, SparseSurrogateEngine)
            loss = engine.current_loss()
        assert loss == surrogate_loss_numpy(csr, targets)

    def test_sparse_engine_lifecycle_never_densifies(self, engine_pair):
        """The full sparse-engine lifecycle — loss, scoring, gradient steps,
        apply/rollback — runs under the densify tripwire and stays
        bit-identical to the dense reference computed outside the guard."""
        dense, sparse_eng = engine_pair
        flips = [(int(dense.rows[k]), int(dense.cols[k])) for k in range(3)]
        rng = np.random.default_rng(4)
        zdot = rng.uniform(0.0, 1.0, size=len(dense.rows))
        dense_loss, dense_grad, dense_mask = dense.binarized_step(zdot)
        with forbid_densify(context="sparse engine lifecycle"):
            assert sparse_eng.current_loss() == dense.current_loss()
            assert sparse_eng.score_flips(flips) == dense.score_flips(flips)
            sparse_loss, sparse_grad, sparse_mask = sparse_eng.binarized_step(zdot)
            sparse_eng.push_flip(*flips[0])
            sparse_eng.pop_flips(1)
            assert sparse_eng.current_loss() == dense.current_loss()
        assert sparse_loss == dense_loss
        np.testing.assert_array_equal(sparse_mask, dense_mask)
        np.testing.assert_allclose(sparse_grad, dense_grad, rtol=1e-8, atol=1e-9)

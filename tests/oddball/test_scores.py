"""Tests for the Eq. 3 anomaly scores."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.oddball.regression import PowerLawFit
from repro.oddball.scores import (
    anomaly_scores,
    anomaly_scores_with_fit,
    proxy_scores,
    score_from_features,
)


class TestScoreFromFeatures:
    def test_zero_on_the_line(self):
        fit = PowerLawFit(beta0=0.0, beta1=1.0)  # expected E = N
        n = np.array([2.0, 5.0])
        e = np.array([2.0, 5.0])
        np.testing.assert_allclose(score_from_features(n, e, fit), [0.0, 0.0])

    def test_grows_with_deviation(self):
        fit = PowerLawFit(beta0=0.0, beta1=1.0)
        n = np.array([4.0, 4.0, 4.0])
        e = np.array([4.0, 8.0, 16.0])
        scores = score_from_features(n, e, fit)
        assert scores[0] < scores[1] < scores[2]

    def test_symmetric_in_direction(self):
        """Above-line and below-line deviations both score positive."""
        fit = PowerLawFit(beta0=0.0, beta1=1.0)
        n = np.array([8.0, 8.0])
        e = np.array([16.0, 4.0])
        scores = score_from_features(n, e, fit)
        assert (scores > 0).all()

    def test_eq3_closed_form(self):
        fit = PowerLawFit(beta0=0.0, beta1=1.0)
        n = np.array([4.0])
        e = np.array([10.0])
        expected = (10.0 / 4.0) * np.log(abs(10.0 - 4.0) + 1.0)
        assert score_from_features(n, e, fit)[0] == pytest.approx(expected)

    def test_isolated_nodes_zero(self):
        fit = PowerLawFit(beta0=0.0, beta1=1.0)
        scores = score_from_features(np.array([0.0, 3.0]), np.array([0.0, 3.0]), fit)
        assert scores[0] == 0.0


class TestAnomalyScores:
    def test_star_hub_scores_highest(self):
        # A big star attached to a homogeneous background.
        g = erdos_renyi(80, 0.1, rng=0)
        for v in range(1, 60):
            if not g.has_edge(0, v):
                g.add_edge(0, v)
        scores = anomaly_scores(g.adjacency)
        assert scores[0] == scores.max()

    def test_all_scores_non_negative(self, small_ba_graph):
        assert (anomaly_scores(small_ba_graph.adjacency) >= 0).all()

    def test_fit_is_returned(self, small_er_graph):
        scores, fit = anomaly_scores_with_fit(small_er_graph.adjacency)
        assert len(scores) == small_er_graph.number_of_nodes
        assert 0.5 <= fit.beta1 <= 2.5  # the paper's power-law exponent range

    def test_poisoning_changes_regression(self, small_er_graph):
        """Scoring is re-fit per graph: removing edges moves everyone's score."""
        adjacency = small_er_graph.adjacency
        _, fit_before = anomaly_scores_with_fit(adjacency)
        g = Graph(adjacency)
        edges = list(g.edges())[:10]
        for u, v in edges:
            if g.degree(u) > 1 and g.degree(v) > 1:
                g.remove_edge(u, v)
        _, fit_after = anomaly_scores_with_fit(g.adjacency)
        assert fit_before.beta0 != fit_after.beta0

    def test_proxy_scores_nonnegative_and_smaller_scale(self, small_ba_graph):
        adjacency = small_ba_graph.adjacency
        proxy = proxy_scores(adjacency)
        full = anomaly_scores(adjacency)
        assert (proxy >= 0).all()
        # proxy omits the >=1 ratio factor, so it never exceeds the full score
        assert (proxy <= full + 1e-9).all()

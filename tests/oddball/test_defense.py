"""Tests for the SVD graph-purification defence (reproduction extension)."""

import numpy as np
import pytest

from repro.attacks import BinarizedAttack
from repro.graph.generators import barabasi_albert
from repro.oddball.defense import purified_scores, svd_purify
from repro.oddball.detector import OddBall


class TestSvdPurify:
    def test_output_is_valid_simple_graph(self, small_ba_graph):
        purified = svd_purify(small_ba_graph.adjacency, rank=10)
        assert np.array_equal(purified, purified.T)
        assert set(np.unique(purified)) <= {0.0, 1.0}
        assert np.diagonal(purified).sum() == 0.0

    def test_full_rank_roundtrip(self, small_ba_graph):
        """Keeping every component reconstructs the graph exactly."""
        adjacency = small_ba_graph.adjacency
        purified = svd_purify(adjacency, rank=adjacency.shape[0])
        np.testing.assert_array_equal(purified, adjacency)

    def test_low_rank_simplifies(self, small_ba_graph):
        adjacency = small_ba_graph.adjacency
        purified = svd_purify(adjacency, rank=3)
        # a rank-3 thresholded reconstruction cannot keep every edge
        assert purified.sum() <= adjacency.sum()

    def test_rank_validation(self, small_ba_graph):
        with pytest.raises(ValueError):
            svd_purify(small_ba_graph.adjacency, rank=0)
        with pytest.raises(ValueError):
            svd_purify(small_ba_graph.adjacency, rank=10_000)

    def test_asymmetric_rejected(self):
        bad = np.zeros((3, 3))
        bad[0, 1] = 1.0
        with pytest.raises(ValueError):
            svd_purify(bad, rank=1)


class TestPurifiedScores:
    def test_scores_finite(self, small_ba_graph):
        scores = purified_scores(small_ba_graph.adjacency, rank=20)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all()

    def test_degenerate_rank_raises(self):
        g = barabasi_albert(30, 2, rng=0)
        with pytest.raises(ValueError):
            # rank-1 thresholded reconstruction wipes almost every edge
            purified_scores(g.adjacency, rank=1, threshold=0.99)

    def test_mitigates_attack_somewhat(self):
        """Purification recovers part of the targets' score mass (or at
        least never helps the attacker) on a planted-anomaly graph."""
        g = barabasi_albert(120, 3, rng=5)
        detector = OddBall()
        report = detector.analyze(g)
        targets = report.top_k(3).tolist()
        result = BinarizedAttack(iterations=60, lambdas=(0.2, 0.05)).attack(
            g, targets, budget=10
        )
        poisoned = result.poisoned()

        before = report.scores[targets].sum()
        after_plain = detector.scores(poisoned)[targets].sum()
        rank = 40
        after_purified = purified_scores(poisoned, rank=rank)[targets].sum()
        baseline_purified = purified_scores(g.adjacency, rank=rank)[targets].sum()

        tau_plain = (before - after_plain) / before
        tau_purified = (baseline_purified - after_purified) / max(baseline_purified, 1e-9)
        # the purified pipeline should not amplify the attack
        assert tau_purified <= tau_plain + 0.15

"""Tests for the random baseline attack."""

import numpy as np

from repro.attacks.random_attack import RandomAttack


class TestRandomAttack:
    def test_budget_and_validity(self, small_er_graph):
        result = RandomAttack(rng=0).attack(small_er_graph, [0, 1], budget=5)
        assert len(result.flips()) <= 5
        poisoned = result.poisoned()
        assert np.array_equal(poisoned, poisoned.T)
        assert set(np.unique(poisoned)) <= {0.0, 1.0}

    def test_deterministic_given_seed(self, small_er_graph):
        a = RandomAttack(rng=7).attack(small_er_graph, [0], budget=4)
        b = RandomAttack(rng=7).attack(small_er_graph, [0], budget=4)
        assert a.flips() == b.flips()

    def test_target_biased_touches_targets(self, small_er_graph):
        targets = [3, 5]
        result = RandomAttack(rng=1, target_biased=True).attack(
            small_er_graph, targets, budget=6
        )
        for u, v in result.flips():
            assert u in targets or v in targets

    def test_no_singletons(self, small_ba_graph):
        result = RandomAttack(rng=2).attack(small_ba_graph, [0], budget=20)
        degrees = result.poisoned().sum(axis=1)
        assert not ((degrees == 0) & (small_ba_graph.degrees() > 0)).any()

    def test_surrogate_recorded_per_budget(self, small_er_graph):
        result = RandomAttack(rng=3).attack(small_er_graph, [0, 1], budget=3)
        assert 0 in result.surrogate_by_budget
        assert len(result.surrogate_by_budget) >= 1

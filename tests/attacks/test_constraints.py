"""Tests for flip-validity rules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.constraints import (
    creates_singleton,
    filter_valid_flips,
    no_singleton_mask,
    sign_valid_mask,
)
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph


class TestSignValidMask:
    def test_add_needs_negative_gradient(self):
        adjacency = np.zeros((2, 2))
        gradient = np.array([[0.0, -1.0], [-1.0, 0.0]])
        assert sign_valid_mask(adjacency, gradient)[0, 1]
        assert not sign_valid_mask(adjacency, -gradient)[0, 1]

    def test_delete_needs_positive_gradient(self):
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        gradient = np.array([[0.0, 2.0], [2.0, 0.0]])
        assert sign_valid_mask(adjacency, gradient)[0, 1]
        assert not sign_valid_mask(adjacency, -gradient)[0, 1]

    def test_diagonal_never_valid(self):
        adjacency = np.zeros((3, 3))
        gradient = -np.ones((3, 3))
        assert not np.diagonal(sign_valid_mask(adjacency, gradient)).any()


class TestNoSingletonMask:
    def test_deleting_last_edge_blocked(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        mask = no_singleton_mask(g.adjacency)
        assert not mask[0, 1]  # node 0 has degree 1
        assert not mask[1, 2]  # node 2 has degree 1

    def test_additions_always_allowed(self):
        g = Graph.from_edges(3, [(0, 1)])
        mask = no_singleton_mask(g.adjacency)
        assert mask[0, 2] and mask[1, 2]

    def test_safe_deletion_allowed(self, triangle_graph):
        mask = no_singleton_mask(triangle_graph.adjacency)
        assert mask[0, 1]  # everyone has degree 2


class TestCreatesSingleton:
    def test_cases(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (1, 3)])
        adjacency = g.adjacency
        assert creates_singleton(adjacency, 0, 1)  # node 0 degree 1
        assert not creates_singleton(adjacency, 1, 2)
        assert not creates_singleton(adjacency, 0, 2)  # an addition


class TestFilterValidFlips:
    def test_respects_limit(self, small_er_graph):
        candidates = list(small_er_graph.edges())
        accepted = filter_valid_flips(small_er_graph.adjacency, candidates, limit=3)
        assert len(accepted) <= 3

    def test_skips_diagonal_and_duplicates(self):
        adjacency = np.zeros((4, 4))
        accepted = filter_valid_flips(adjacency, [(1, 1), (0, 1), (1, 0), (2, 3)])
        assert accepted == [(0, 1), (2, 3)]

    def test_forbidden_pairs_skipped(self):
        adjacency = np.zeros((4, 4))
        accepted = filter_valid_flips(adjacency, [(0, 1), (2, 3)], forbidden=[(0, 1)])
        assert accepted == [(2, 3)]

    def test_sequential_validity(self):
        """A pair valid initially can become invalid after earlier flips."""
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        # Deleting (0,1) is invalid immediately (node 0 singleton), but after
        # adding (0,2) it becomes legal.
        accepted = filter_valid_flips(g.adjacency, [(0, 2), (0, 1)])
        assert accepted == [(0, 2), (0, 1)]
        accepted_reversed = filter_valid_flips(g.adjacency, [(0, 1), (0, 2)])
        assert accepted_reversed == [(0, 2)]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 15), st.integers(1, 10))
    def test_output_always_applies_cleanly(self, n, limit):
        g = erdos_renyi(n, 0.4, rng=n)
        rng = np.random.default_rng(0)
        pairs = [(i, j) for i in range(n) for j in range(n)]
        rng.shuffle(pairs)
        accepted = filter_valid_flips(g.adjacency, pairs, limit=limit)
        # applying them yields a valid simple graph with no singletons beyond
        # those already present
        scratch = g.adjacency
        for u, v in accepted:
            scratch[u, v] = scratch[v, u] = 1.0 - scratch[u, v]
        degrees_before = g.degrees()
        degrees_after = scratch.sum(axis=1)
        newly_isolated = ((degrees_after == 0) & (degrees_before > 0)).sum()
        assert newly_isolated == 0

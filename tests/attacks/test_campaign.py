"""Campaign semantics: batching is a performance lever, never a semantics
change.  A campaign over k jobs must be bit-identical to k sequential
standalone ``attack()`` calls (dense and sparse backends), resume
deterministically from checkpoints, and keep the adaptive candidate set a
superset of ``target_incident`` at every step."""

import json

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import (
    AttackCampaign,
    AttackJob,
    BinarizedAttack,
    CampaignResult,
    CandidateSet,
    GradMaxSearch,
    grid_jobs,
)
from repro.attacks.candidates import AdaptiveCandidateSet
from repro.graph.generators import erdos_renyi
from repro.oddball.surrogate import SurrogateEngine

# graph_and_targets comes from tests/conftest.py (shared campaign fixture)


def _mixed_jobs(targets):
    jobs = grid_jobs(
        "gradmaxsearch", [[t] for t in targets[:4]], budgets=[3],
        candidates="target_incident",
    )
    jobs += grid_jobs(
        "binarizedattack", [targets[:3]], budgets=[3],
        lambdas=[0.3, 0.05], candidates="target_incident", iterations=15,
    )
    jobs += grid_jobs(
        "continuousa", [targets[:2]], budgets=[2],
        candidates="target_incident", max_iter=15,
    )
    return jobs


class TestCampaignMatchesSequential:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_bit_identical_to_sequential_calls(self, graph_and_targets, backend):
        graph, targets = graph_and_targets
        jobs = _mixed_jobs(targets)
        result = AttackCampaign(graph, backend=backend).run(jobs)
        for job, outcome in zip(jobs, result):
            solo = job.build_attack(backend).attack(
                graph, list(job.targets), job.budget, candidates=job.candidates
            )
            assert {
                b: solo.flips(b) for b in solo.budgets
            } == outcome.flips_by_budget, job.attack
            for b, loss in solo.surrogate_by_budget.items():
                assert outcome.surrogate_by_budget[b] == pytest.approx(loss, rel=1e-12)

    def test_sparse_input_campaign(self, graph_and_targets):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        jobs = grid_jobs(
            "gradmaxsearch", [[t] for t in targets[:3]], budgets=[3],
            candidates="target_incident",
        )
        from_sparse = AttackCampaign(csr).run(jobs)
        assert from_sparse.backend == "sparse"
        from_dense = AttackCampaign(graph, backend="sparse").run(jobs)
        for a, b in zip(from_sparse, from_dense):
            assert a.flips_by_budget == b.flips_by_budget

    def test_baseline_attacks_run_standalone(self, graph_and_targets):
        graph, targets = graph_and_targets
        jobs = [
            AttackJob.make("random", targets[:3], 3,
                           candidates="target_incident", rng=5),
            AttackJob.make("oddball-heuristic", targets[:3], 3, rng=5),
        ]
        result = AttackCampaign(graph).run(jobs)
        for job, outcome in zip(jobs, result):
            solo = job.build_attack(result.backend).attack(
                graph, list(job.targets), job.budget, candidates=job.candidates
            )
            assert {b: solo.flips(b) for b in solo.budgets} == outcome.flips_by_budget

    def test_weighted_targets_job(self, graph_and_targets):
        graph, targets = graph_and_targets
        job = AttackJob.make(
            "gradmaxsearch", targets[:3], 3,
            candidates="target_incident", weights=[2.0, 1.0, 0.5],
        )
        outcome = AttackCampaign(graph).run([job]).outcome(job)
        solo = GradMaxSearch().attack(
            graph, list(job.targets), 3,
            target_weights=[2.0, 1.0, 0.5], candidates="target_incident",
        )
        assert {b: solo.flips(b) for b in solo.budgets} == outcome.flips_by_budget


class TestCampaignOutcomes:
    def test_score_decrease_matches_public_api(self, graph_and_targets):
        graph, targets = graph_and_targets
        job = AttackJob.make("gradmaxsearch", targets[:2], 4,
                             candidates="target_incident")
        outcome = AttackCampaign(graph).run([job]).outcome(job)
        reconstructed = outcome.attack_result(graph.adjacency)
        assert outcome.score_decrease == pytest.approx(
            reconstructed.score_decrease(list(job.targets)), rel=1e-9
        )

    def test_rank_shifts_bury_targets(self, graph_and_targets):
        graph, targets = graph_and_targets
        job = AttackJob.make("gradmaxsearch", [targets[0]], 4,
                             candidates="target_incident")
        outcome = AttackCampaign(graph).run([job]).outcome(job)
        # a successful attack pushes the target DOWN the ranking
        assert outcome.rank_shifts[targets[0]] > 0

    def test_compute_ranks_off(self, graph_and_targets):
        graph, targets = graph_and_targets
        job = AttackJob.make("gradmaxsearch", [targets[0]], 2,
                             candidates="target_incident")
        outcome = AttackCampaign(graph, compute_ranks=False).run([job]).outcome(job)
        assert outcome.rank_shifts == {}

    def test_result_roundtrips_through_json(self, graph_and_targets):
        graph, targets = graph_and_targets
        jobs = _mixed_jobs(targets)[:3]
        result = AttackCampaign(graph).run(jobs)
        payload = json.loads(json.dumps(result.to_dict()))
        back = CampaignResult.from_dict(payload)
        assert back.to_dict() == result.to_dict()
        assert [o.job_id for o in back] == [o.job_id for o in result]


class TestCampaignResume:
    def test_resume_is_deterministic(self, graph_and_targets, tmp_path):
        graph, targets = graph_and_targets
        jobs = _mixed_jobs(targets)
        checkpoint = tmp_path / "campaign.json"
        # "interrupt" after the first three jobs
        AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs[:3])
        resumed = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        fresh = AttackCampaign(graph).run(jobs)
        assert resumed.resumed_jobs == 3
        for a, b in zip(resumed, fresh):
            assert a.flips_by_budget == b.flips_by_budget
            assert a.surrogate_by_budget == b.surrogate_by_budget
            assert a.rank_shifts == b.rank_shifts

    def test_completed_campaign_resumes_without_work(self, graph_and_targets, tmp_path):
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[t] for t in targets[:3]], budgets=[2],
                         candidates="target_incident")
        checkpoint = tmp_path / "campaign.json"
        first = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        again = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        assert again.resumed_jobs == len(jobs)
        for a, b in zip(first, again):
            assert a.flips_by_budget == b.flips_by_budget
            assert a.seconds == b.seconds  # replayed from the checkpoint

    def test_checkpoint_rejects_different_graph(self, graph_and_targets, tmp_path):
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[targets[0]]], budgets=[2],
                         candidates="target_incident")
        checkpoint = tmp_path / "campaign.json"
        AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        other = erdos_renyi(90, 0.1, rng=1)
        with pytest.raises(ValueError, match="different"):
            AttackCampaign(other, checkpoint_path=checkpoint).run(jobs)

    def test_duplicate_jobs_rejected(self, graph_and_targets):
        graph, targets = graph_and_targets
        job = AttackJob.make("gradmaxsearch", [targets[0]], 2)
        with pytest.raises(ValueError, match="duplicate"):
            AttackCampaign(graph).run([job, job])

    def test_torn_trailing_checkpoint_line_is_skipped(
        self, graph_and_targets, tmp_path
    ):
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[t] for t in targets[:3]], budgets=[2],
                         candidates="target_incident")
        checkpoint = tmp_path / "campaign.json"
        AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs[:2])
        # simulate a hard kill mid-append
        with checkpoint.open("a") as handle:
            handle.write('{"job": {"attack": "gradmaxsea')
        resumed = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        fresh = AttackCampaign(graph).run(jobs)
        assert resumed.resumed_jobs == 2
        for a, b in zip(resumed, fresh):
            assert a.flips_by_budget == b.flips_by_budget
        # the resumed run appended AFTER the torn fragment on a fresh line:
        # a second resume must see every completed job, not re-lose them
        replay = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        assert replay.resumed_jobs == len(jobs)
        for a, b in zip(replay, fresh):
            assert a.flips_by_budget == b.flips_by_budget

    def test_torn_header_with_no_records_is_repaired(
        self, graph_and_targets, tmp_path
    ):
        """A crash during the very first append tears the header; since no
        job completed, the truthful checkpoint is an empty one — the run
        must proceed (and recheckpoint) instead of demanding manual
        deletion."""
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[targets[0]]], budgets=[2],
                         candidates="target_incident")
        checkpoint = tmp_path / "campaign.json"
        checkpoint.write_text('{"version"')  # torn header, nothing after it
        result = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        assert result.resumed_jobs == 0
        replay = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        assert replay.resumed_jobs == 1

    def test_corrupt_header_with_records_still_raises(
        self, graph_and_targets, tmp_path
    ):
        """Garbage where the header should be, but records following it:
        that is not a first-append tear — refuse to guess."""
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[targets[0]]], budgets=[2],
                         candidates="target_incident")
        checkpoint = tmp_path / "campaign.json"
        checkpoint.write_text('{"version"\n{"job": {}}\n')
        with pytest.raises(ValueError, match="corrupt header"):
            AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)

    def test_parseable_but_incomplete_record_is_skipped(
        self, graph_and_targets, tmp_path
    ):
        """A tear can land exactly on a close-brace, leaving valid JSON
        with fields missing — that record must cost one job, not the file."""
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[t] for t in targets[:2]], budgets=[2],
                         candidates="target_incident")
        checkpoint = tmp_path / "campaign.json"
        AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        lines = checkpoint.read_text().splitlines()
        # truncate the last record to a parseable prefix: its "job" object
        torn = json.loads(lines[-1])["job"]
        lines[-1] = json.dumps({"job": torn})
        checkpoint.write_text("\n".join(lines) + "\n")
        resumed = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        fresh = AttackCampaign(graph).run(jobs)
        assert resumed.resumed_jobs == 1
        for a, b in zip(resumed, fresh):
            assert a.flips_by_budget == b.flips_by_budget

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_failed_job_leaves_engine_clean(self, graph_and_targets, backend):
        graph, targets = graph_and_targets
        campaign = AttackCampaign(graph, backend=backend)
        good = grid_jobs("gradmaxsearch", [[t] for t in targets[:2]], budgets=[3],
                         candidates="target_incident")
        # run one job so the shared engine exists and holds state
        first = campaign.run(good[:1])
        # a job whose attack blows up mid-run (two_hop needs the matrix walk,
        # so force a failure via an interrupt-like exception inside attack)
        boom = AttackJob.make("gradmaxsearch", [targets[0]], 2)
        original_attack = GradMaxSearch.attack

        def exploding_attack(self, graph_, targets_, budget, **kwargs):
            engine = kwargs.get("engine")
            if engine is not None:
                engine.apply_flip(0, 1)  # poison, then die mid-job
                raise KeyboardInterrupt
            return original_attack(self, graph_, targets_, budget, **kwargs)

        GradMaxSearch.attack = exploding_attack
        try:
            with pytest.raises(KeyboardInterrupt):
                campaign.run([boom])
        finally:
            GradMaxSearch.attack = original_attack
        # the shared engine must have been restored: rerunning the good jobs
        # on the SAME campaign instance matches a fresh campaign exactly
        rerun = campaign.run(good)
        fresh = AttackCampaign(graph, backend=backend).run(good)
        for a, b in zip(rerun, fresh):
            assert a.flips_by_budget == b.flips_by_budget
        assert first.outcome(good[0]).flips_by_budget == rerun.outcome(
            good[0]
        ).flips_by_budget


class TestJobSpecs:
    def test_job_id_is_content_addressed(self):
        a = AttackJob.make("gradmaxsearch", [3, 1], 2, candidates="two_hop")
        b = AttackJob.make("gradmaxsearch", (3, 1), 2, candidates="two_hop")
        c = AttackJob.make("gradmaxsearch", [3, 2], 2, candidates="two_hop")
        assert a.job_id == b.job_id
        assert a.job_id != c.job_id

    def test_job_roundtrips_with_stable_id(self):
        job = AttackJob.make(
            "binarizedattack", [1, 2], 3,
            candidates="adaptive", weights=[1.0, 2.0],
            lambdas=(0.1,), iterations=20,
        )
        back = AttackJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert back == job
        assert back.job_id == job.job_id

    def test_rejects_unknown_attack_and_strategy(self):
        with pytest.raises(ValueError, match="unknown attack"):
            AttackJob.make("nope", [0], 1)
        with pytest.raises(ValueError, match="strategy"):
            AttackJob.make("gradmaxsearch", [0], 1, candidates="bogus")

    def test_every_registered_attack_is_job_buildable(self):
        # the campaign resolves repro.attacks.ATTACK_REGISTRY lazily — a
        # newly registered attack must be job-buildable with no extra wiring
        from repro.attacks import ATTACK_REGISTRY, StructuralAttack

        for name in ATTACK_REGISTRY:
            job = AttackJob.make(name, [0], 1)
            assert isinstance(job.build_attack("dense"), StructuralAttack)

    def test_rejects_params_the_attack_does_not_take(self):
        # caught at job-BUILD time, not mid-campaign
        with pytest.raises(ValueError, match="does not accept"):
            AttackJob.make("gradmaxsearch", [0], 1, lambdas=(0.1,))
        with pytest.raises(ValueError, match="does not accept"):
            grid_jobs("gradmaxsearch", [[0]], budgets=[1], lambdas=[0.1])

    def test_grid_jobs_lambda_sweep(self):
        jobs = grid_jobs(
            "binarizedattack", [[0], [1]], budgets=[2, 3],
            lambdas=[0.3, 0.1], iterations=10,
        )
        assert len(jobs) == 2 * 2 * 2
        lams = {dict(j.params)["lambdas"] for j in jobs}
        assert lams == {(0.3,), (0.1,)}
        assert all(dict(j.params)["iterations"] == 10 for j in jobs)


class TestAdaptiveCandidates:
    def test_starts_as_target_incident(self, graph_and_targets):
        graph, targets = graph_and_targets
        adaptive = CandidateSet.build("adaptive", graph, targets)
        incident = CandidateSet.target_incident(graph.number_of_nodes, targets)
        assert adaptive.pair_set() == incident.pair_set()
        assert adaptive.strategy == "adaptive"

    def test_refresh_grows_superset_of_target_incident(self, graph_and_targets):
        graph, targets = graph_and_targets
        n = graph.number_of_nodes
        incident = CandidateSet.target_incident(n, targets).pair_set()
        adaptive = CandidateSet.build("adaptive", graph, targets)
        engine = SurrogateEngine.create(
            graph.adjacency, targets, adaptive, backend="sparse"
        )
        # land flips touching non-ball nodes and check the invariant holds
        outsiders = [v for v in range(n) if v not in set(targets)][:4]
        for v in outsiders:
            grown = adaptive.refresh([(targets[0], v)], engine)
            assert incident <= grown.pair_set()
            assert adaptive.pair_set() <= grown.pair_set()
            assert v in grown.ball
            adaptive = grown
        # flips between existing ball members change nothing
        assert adaptive.refresh([(targets[0], outsiders[0])], engine) is adaptive

    def test_static_strategies_refresh_to_self(self, graph_and_targets):
        graph, targets = graph_and_targets
        static = CandidateSet.build("target_incident", graph, targets)
        assert static.refresh([(0, 1)]) is static

    def test_refresh_requires_engine_for_growth(self, graph_and_targets):
        graph, targets = graph_and_targets
        adaptive = CandidateSet.build("adaptive", graph, targets)
        outsider = next(v for v in range(graph.number_of_nodes)
                        if v not in set(targets))
        with pytest.raises(ValueError, match="engine"):
            adaptive.refresh([(targets[0], outsider)])

    @pytest.mark.parametrize("attack_cls", [GradMaxSearch, BinarizedAttack])
    def test_adaptive_backend_parity(self, graph_and_targets, attack_cls):
        graph, targets = graph_and_targets
        kwargs = {"iterations": 15} if attack_cls is BinarizedAttack else {}
        dense = attack_cls(backend="dense", **kwargs).attack(
            graph, targets[:3], 4, candidates="adaptive"
        )
        fast = attack_cls(backend="sparse", **kwargs).attack(
            graph, targets[:3], 4, candidates="adaptive"
        )
        assert dense.flips_by_budget == fast.flips_by_budget

    def test_adaptive_final_set_contains_flipped_pairs(self, graph_and_targets):
        graph, targets = graph_and_targets
        result = GradMaxSearch().attack(graph, targets[:3], 5, candidates="adaptive")
        incident = CandidateSet.target_incident(
            graph.number_of_nodes, targets[:3]
        )
        assert result.metadata["candidate_strategy"] == "adaptive"
        assert result.metadata["candidate_count"] >= len(incident)

    def test_adaptive_campaign_jobs(self, graph_and_targets):
        graph, targets = graph_and_targets
        jobs = grid_jobs("gradmaxsearch", [[t] for t in targets[:3]], budgets=[3],
                         candidates="adaptive")
        result = AttackCampaign(graph, backend="sparse").run(jobs)
        for job, outcome in zip(jobs, result):
            solo = GradMaxSearch(backend="sparse").attack(
                graph, list(job.targets), job.budget, candidates="adaptive"
            )
            assert {b: solo.flips(b) for b in solo.budgets} == outcome.flips_by_budget

    def test_adaptive_set_validates_like_candidate_set(self):
        with pytest.raises(ValueError):
            AdaptiveCandidateSet(
                n=4,
                rows=np.array([2], dtype=np.intp),
                cols=np.array([1], dtype=np.intp),  # not canonical
            )

"""Tests for GradMaxSearch."""

import numpy as np
import pytest

from repro.attacks.gradmax import GradMaxSearch
from repro.oddball.detector import OddBall


@pytest.fixture()
def attack_setup(small_ba_graph):
    report = OddBall().analyze(small_ba_graph)
    targets = report.top_k(3).tolist()
    return small_ba_graph, targets


class TestGradMaxSearch:
    def test_budget_respected(self, attack_setup):
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=5)
        assert len(result.flips()) <= 5
        assert result.max_budget == 5

    def test_no_pair_flipped_twice(self, attack_setup):
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=8)
        flips = result.flips()
        assert len(set(flips)) == len(flips)

    def test_no_singletons_created(self, attack_setup):
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=8)
        degrees = result.poisoned().sum(axis=1)
        before = graph.degrees()
        assert not ((degrees == 0) & (before > 0)).any()

    def test_decreases_target_scores(self, attack_setup):
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=6)
        assert result.score_decrease(targets) > 0.0

    def test_surrogate_improves_overall(self, attack_setup):
        """Per-step monotonicity is NOT guaranteed — a discrete flip can
        overshoot the gradient's local linearisation (the paper's very
        criticism of GradMaxSearch, Section V-B).  The attack must still
        improve the surrogate overall on this fixture."""
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=6)
        losses = result.surrogate_by_budget
        assert losses[max(losses)] < losses[0]

    def test_deterministic(self, attack_setup):
        graph, targets = attack_setup
        a = GradMaxSearch().attack(graph, targets, budget=4)
        b = GradMaxSearch().attack(graph, targets, budget=4)
        assert a.flips() == b.flips()

    def test_prefix_property(self, attack_setup):
        """Budget-b flips are a prefix of budget-B flips (greedy order)."""
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=6)
        full = result.flips(6)
        for b in range(6):
            assert result.flips(b) == full[:b]

    def test_budget_zero(self, attack_setup):
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph, targets, budget=0)
        assert result.flips() == []
        np.testing.assert_allclose(result.poisoned(), graph.adjacency)

    def test_accepts_adjacency_matrix(self, attack_setup):
        graph, targets = attack_setup
        result = GradMaxSearch().attack(graph.adjacency, targets, budget=2)
        assert len(result.flips()) <= 2

    def test_invalid_budget(self, attack_setup):
        graph, targets = attack_setup
        with pytest.raises(ValueError):
            GradMaxSearch().attack(graph, targets, budget=-1)
        with pytest.raises(TypeError):
            GradMaxSearch().attack(graph, targets, budget=1.5)

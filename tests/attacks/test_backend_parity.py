"""Backend parity: each attack must select the same flip sets whether its
PGD/greedy loop runs on the dense autograd engine or the sparse-incremental
engine, and sparse inputs must stay sparse end-to-end.

Every sparse-side run executes under the :func:`forbid_densify` runtime guard,
so "stays sparse" is enforced by a tripwire, not just asserted after the fact.
"""

import pytest
from scipy import sparse

from repro.analysis import forbid_densify
from repro.attacks import (
    BinarizedAttack,
    CandidateSet,
    ContinuousA,
    GradMaxSearch,
    OddBallHeuristic,
    RandomAttack,
)
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.oddball.detector import OddBall


def _graphs():
    return [
        barabasi_albert(60, 3, rng=11),
        erdos_renyi(50, 0.15, rng=7),
    ]


def _targets(graph, k=3):
    return OddBall().analyze(graph).top_k(k).tolist()


@pytest.fixture(params=range(2), ids=["ba60", "er50"])
def graph_and_targets(request):
    graph = _graphs()[request.param]
    return graph, _targets(graph)


class TestBinarizedBackendParity:
    @pytest.mark.parametrize("candidates", [None, "full", "target_incident", "two_hop"])
    def test_dense_and_sparse_agree(self, graph_and_targets, candidates):
        graph, targets = graph_and_targets
        dense = BinarizedAttack(iterations=25, backend="dense").attack(
            graph, targets, budget=4, candidates=candidates
        )
        with forbid_densify(context="binarized backend parity"):
            fast = BinarizedAttack(iterations=25, backend="sparse").attack(
                graph, targets, budget=4, candidates=candidates
            )
        assert dense.flips_by_budget == fast.flips_by_budget
        for budget in dense.surrogate_by_budget:
            assert dense.surrogate_by_budget[budget] == pytest.approx(
                fast.surrogate_by_budget[budget], rel=1e-9
            )

    def test_auto_on_small_dense_graph_is_dense(self, graph_and_targets):
        graph, targets = graph_and_targets
        result = BinarizedAttack(iterations=10).attack(graph, targets, budget=2)
        assert result.metadata["backend"] == "dense"

    def test_sparse_input_stays_sparse(self, graph_and_targets):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        with forbid_densify(context="binarized sparse input"):
            result = BinarizedAttack(iterations=25).attack(
                csr, targets, budget=4, candidates="target_incident"
            )
        assert result.metadata["backend"] == "sparse"
        assert sparse.issparse(result.original)
        assert sparse.issparse(result.poisoned())
        from_dense = BinarizedAttack(iterations=25, backend="sparse").attack(
            graph, targets, budget=4, candidates="target_incident"
        )
        assert result.flips_by_budget == from_dense.flips_by_budget

    def test_sparse_backend_respects_floor(self, graph_and_targets):
        from repro.oddball.surrogate import surrogate_loss_numpy

        graph, targets = graph_and_targets
        result = BinarizedAttack(iterations=20, floor=2.0, backend="sparse").attack(
            graph, targets, budget=3
        )
        for budget, loss in result.surrogate_by_budget.items():
            reproduced = surrogate_loss_numpy(
                result.poisoned(budget), targets, floor=2.0
            )
            assert loss == pytest.approx(reproduced, rel=1e-12)

    def test_weighted_targets_parity(self, graph_and_targets):
        graph, targets = graph_and_targets
        weights = [2.0, 1.0, 0.5]
        dense = BinarizedAttack(iterations=20, backend="dense").attack(
            graph, targets, budget=3, target_weights=weights
        )
        with forbid_densify(context="binarized weighted parity"):
            fast = BinarizedAttack(iterations=20, backend="sparse").attack(
                graph, targets, budget=3, target_weights=weights
            )
        assert dense.flips_by_budget == fast.flips_by_budget

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            BinarizedAttack(backend="gpu")


class TestContinuousBackendParity:
    def test_dense_and_sparse_agree(self, graph_and_targets):
        graph, targets = graph_and_targets
        dense = ContinuousA(max_iter=30, backend="dense").attack(graph, targets, budget=4)
        with forbid_densify(context="continuous backend parity"):
            fast = ContinuousA(max_iter=30, backend="sparse").attack(
                graph, targets, budget=4
            )
        assert dense.flips_by_budget == fast.flips_by_budget
        assert dense.metadata["iterations"] == fast.metadata["iterations"]

    def test_sparse_input_stays_sparse(self, graph_and_targets):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        with forbid_densify(context="continuous sparse input"):
            result = ContinuousA(max_iter=30).attack(
                csr, targets, budget=4, candidates="target_incident"
            )
        assert result.metadata["backend"] == "sparse"
        assert sparse.issparse(result.original)
        assert sparse.issparse(result.poisoned())

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ContinuousA(backend="gpu")


class TestGradMaxBackendParity:
    @pytest.mark.parametrize("strategy", ["full", "target_incident", "two_hop"])
    def test_engine_backends_agree(self, graph_and_targets, strategy):
        graph, targets = graph_and_targets
        candidate_set = CandidateSet.build(strategy, graph, targets)
        dense = GradMaxSearch(backend="dense").attack(
            graph, targets, budget=5, candidates=candidate_set
        )
        with forbid_densify(context="gradmax backend parity"):
            fast = GradMaxSearch(backend="sparse").attack(
                graph, targets, budget=5, candidates=candidate_set
            )
        assert dense.metadata["engine"] == "candidates"
        assert fast.metadata["engine"] == "candidates"
        assert dense.flips_by_budget == fast.flips_by_budget

    def test_sparse_backend_without_candidates_matches_dense_loop(
        self, graph_and_targets
    ):
        """backend="sparse" + no candidates runs the engine over the full
        pair set and must reproduce the legacy dense loop's flips."""
        graph, targets = graph_and_targets
        legacy = GradMaxSearch().attack(graph, targets, budget=5)
        with forbid_densify(context="gradmax full-pair parity"):
            fast = GradMaxSearch(backend="sparse").attack(graph, targets, budget=5)
        assert legacy.metadata["engine"] == "dense"
        assert fast.metadata["engine"] == "candidates"
        assert legacy.flips_by_budget == fast.flips_by_budget

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            GradMaxSearch(backend="gpu")


class TestBaselineSparseParity:
    """RandomAttack / OddBallHeuristic accept scipy-sparse input without
    densifying, and reproduce the dense path's flips and losses exactly."""

    @pytest.mark.parametrize("target_biased", [False, True])
    def test_random_attack(self, graph_and_targets, target_biased):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        dense = RandomAttack(rng=13, target_biased=target_biased).attack(
            graph.adjacency, targets, budget=5
        )
        with forbid_densify(context="random attack sparse parity"):
            sparse_result = RandomAttack(rng=13, target_biased=target_biased).attack(
                csr, targets, budget=5
            )
        assert sparse.issparse(sparse_result.original)
        assert sparse.issparse(sparse_result.poisoned())
        assert dense.flips_by_budget == sparse_result.flips_by_budget
        for b, loss in dense.surrogate_by_budget.items():
            assert sparse_result.surrogate_by_budget[b] == pytest.approx(
                loss, rel=1e-9
            )

    def test_random_attack_weighted(self, graph_and_targets):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        weights = [2.0, 1.0, 0.5]
        dense = RandomAttack(rng=13).attack(
            graph.adjacency, targets, budget=4, target_weights=weights
        )
        with forbid_densify(context="random attack weighted parity"):
            sparse_result = RandomAttack(rng=13).attack(
                csr, targets, budget=4, target_weights=weights
            )
        assert dense.flips_by_budget == sparse_result.flips_by_budget
        for b, loss in dense.surrogate_by_budget.items():
            assert sparse_result.surrogate_by_budget[b] == pytest.approx(
                loss, rel=1e-9
            )

    def test_oddball_heuristic(self, graph_and_targets):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        dense = OddBallHeuristic(rng=13).attack(graph.adjacency, targets, budget=5)
        with forbid_densify(context="oddball heuristic sparse parity"):
            sparse_result = OddBallHeuristic(rng=13).attack(csr, targets, budget=5)
        assert sparse.issparse(sparse_result.original)
        assert sparse.issparse(sparse_result.poisoned())
        assert dense.flips_by_budget == sparse_result.flips_by_budget
        for b, loss in dense.surrogate_by_budget.items():
            assert sparse_result.surrogate_by_budget[b] == pytest.approx(
                loss, rel=1e-9
            )

"""Tests for the OddBall-specific heuristic baseline."""

import numpy as np
import pytest

from repro.attacks.heuristic import OddBallHeuristic
from repro.attacks.random_attack import RandomAttack
from repro.graph.anomaly import inject_near_clique, inject_near_star
from repro.graph.generators import erdos_renyi
from repro.oddball.detector import OddBall


class TestOddBallHeuristic:
    def test_budget_and_validity(self, small_ba_graph):
        targets = OddBall().analyze(small_ba_graph).top_k(3).tolist()
        result = OddBallHeuristic(rng=0).attack(small_ba_graph, targets, budget=6)
        assert len(result.flips()) <= 6
        poisoned = result.poisoned()
        assert np.array_equal(poisoned, poisoned.T)
        assert set(np.unique(poisoned)) <= {0.0, 1.0}
        assert np.diagonal(poisoned).sum() == 0.0

    def test_clique_target_gets_deletions(self):
        g = erdos_renyi(80, 0.05, rng=0)
        inject_near_clique(g, 3, clique_size=10, density=0.95, rng=1)
        result = OddBallHeuristic(rng=0).attack(g, [3], budget=5)
        flips = result.flips()
        assert flips, "heuristic found no step"
        adjacency = g.adjacency_view
        deletions = sum(1 for u, v in flips if adjacency[u, v] == 1.0)
        assert deletions == len(flips)  # above the line -> only deletions

    def test_star_target_gets_additions(self):
        from repro.graph.generators import barabasi_albert

        # BA base: the power-law fit has beta1 > 1, so a 30-leaf star sits
        # clearly below the line (E=103 vs expected ~115 on this seed).
        g = barabasi_albert(80, 3, rng=0)
        inject_near_star(g, 5, n_leaves=30, rng=1)
        result = OddBallHeuristic(rng=0).attack(g, [5], budget=5)
        flips = result.flips()
        assert flips
        adjacency = g.adjacency_view
        additions = sum(1 for u, v in flips if adjacency[u, v] == 0.0)
        assert additions == len(flips)  # below the line -> only additions
        # all flips are within the star's egonet (neighbour pairs)
        neighbors = set(g.neighbors(5).tolist())
        for u, v in flips:
            assert u in neighbors and v in neighbors

    def test_decreases_scores_and_beats_random(self, small_ba_graph):
        targets = OddBall().analyze(small_ba_graph).top_k(3).tolist()
        heuristic = OddBallHeuristic(rng=0).attack(small_ba_graph, targets, budget=8)
        random = RandomAttack(rng=0).attack(small_ba_graph, targets, budget=8)
        assert heuristic.score_decrease(targets) > 0.0
        assert heuristic.score_decrease(targets) > random.score_decrease(targets)

    def test_stops_when_no_step_available(self):
        from repro.graph.graph import Graph

        # path graph: targets have < 2 neighbours or no flippable pair
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        result = OddBallHeuristic(rng=0).attack(path, [0], budget=5)
        assert result.metadata["steps_taken"] <= 1

    def test_deterministic(self, small_ba_graph):
        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        a = OddBallHeuristic(rng=4).attack(small_ba_graph, targets, budget=4)
        b = OddBallHeuristic(rng=4).attack(small_ba_graph, targets, budget=4)
        assert a.flips() == b.flips()


class TestWeightedTargets:
    """The κ-weighted objective extension (Section IV-B)."""

    def test_weighted_surrogate_scales(self, small_ba_graph):
        from repro.oddball.surrogate import surrogate_loss_numpy

        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        base = surrogate_loss_numpy(small_ba_graph.adjacency, targets)
        doubled = surrogate_loss_numpy(small_ba_graph.adjacency, targets, [2.0, 2.0])
        assert doubled == pytest.approx(2.0 * base)

    def test_weight_validation(self, small_ba_graph):
        from repro.oddball.surrogate import surrogate_loss_numpy

        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        with pytest.raises(ValueError):
            surrogate_loss_numpy(small_ba_graph.adjacency, targets, [1.0])
        with pytest.raises(ValueError):
            surrogate_loss_numpy(small_ba_graph.adjacency, targets, [1.0, -1.0])

    def test_attack_focuses_on_heavy_target(self, small_ba_graph):
        """An extreme κ on one target skews the poison toward it."""
        from repro.attacks.gradmax import GradMaxSearch
        from repro.oddball.scores import anomaly_scores

        report = OddBall().analyze(small_ba_graph)
        targets = report.top_k(2).tolist()
        heavy, light = targets[1], targets[0]
        result = GradMaxSearch().attack(
            small_ba_graph, targets, budget=6, target_weights=[0.001, 1000.0]
        )
        before = anomaly_scores(small_ba_graph.adjacency)
        after = anomaly_scores(result.poisoned())
        heavy_drop = before[heavy] - after[heavy]
        light_drop = before[light] - after[light]
        assert heavy_drop >= light_drop - 1e-6

    def test_weighted_score_decrease_metric(self, small_ba_graph):
        from repro.attacks.gradmax import GradMaxSearch

        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        result = GradMaxSearch().attack(small_ba_graph, targets, budget=4)
        uniform = result.score_decrease(targets)
        weighted = result.score_decrease(targets, weights=[1.0, 1.0])
        assert uniform == pytest.approx(weighted)
        with pytest.raises(ValueError):
            result.score_decrease(targets, weights=[1.0])


class TestCandidateRestriction:
    def test_target_incident_warns_and_declines(self, small_ba_graph, caplog):
        """The heuristic only flips neighbour pairs, which a single-target
        ``target_incident`` set excludes entirely — it must decline with a
        warning rather than silently pretend to attack."""
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.attacks.heuristic"):
            result = OddBallHeuristic(rng=0).attack(
                small_ba_graph, [0], budget=4, candidates="target_incident"
            )
        assert result.flips() == []
        assert any("candidate restriction" in r.message for r in caplog.records)

    def test_two_hop_keeps_the_heuristic_effective(self, small_ba_graph):
        from repro.oddball.detector import OddBall

        targets = OddBall().analyze(small_ba_graph).top_k(2).tolist()
        restricted = OddBallHeuristic(rng=0).attack(
            small_ba_graph, targets, budget=4, candidates="two_hop"
        )
        assert restricted.flips()

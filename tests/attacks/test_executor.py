"""Executor semantics: sharding across processes is a wall-clock lever,
never a semantics change.  A parallel run must be bit-identical to the
serial :class:`AttackCampaign` on the same grid, checkpoints must
interoperate between serial and parallel runs, and a run killed mid-shard
must resume — with a *different* worker count — to the same result."""

import json

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import (
    AttackCampaign,
    OddBallHeuristic,
    ParallelCampaignExecutor,
    RandomAttack,
    build_campaign,
    grid_jobs,
)
from repro.attacks.executor import _worker_main
from repro.graph.generators import barabasi_albert
from repro.oddball.detector import OddBall
from repro.oddball.surrogate import EngineSpec, SurrogateEngine

# graph_and_targets / sweep_jobs / assert_outcomes_identical come from
# tests/conftest.py (shared campaign fixtures)


class TestParallelSerialParity:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_identical_result_1_vs_4_workers(self, graph_and_targets, backend, sweep_jobs, assert_outcomes_identical):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        serial = build_campaign(graph, backend=backend, workers=1).run(jobs)
        parallel = build_campaign(graph, backend=backend, workers=4).run(jobs)
        assert_outcomes_identical(serial, parallel)
        assert serial.backend == parallel.backend
        assert serial.n == parallel.n

    def test_sparse_input_parity(self, graph_and_targets, sweep_jobs, assert_outcomes_identical):
        graph, targets = graph_and_targets
        csr = sparse.csr_matrix(graph.adjacency)
        jobs = sweep_jobs(targets, count=5)
        serial = AttackCampaign(csr).run(jobs)
        parallel = ParallelCampaignExecutor(csr, workers=3).run(jobs)
        assert parallel.backend == "sparse"
        assert_outcomes_identical(serial, parallel)

    def test_mixed_attack_grid_with_baselines(self, graph_and_targets, sweep_jobs, assert_outcomes_identical):
        """Gradient attacks AND injected-engine baselines shard identically."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=3)
        jobs += grid_jobs(
            "binarizedattack", [targets[:3]], budgets=[3],
            lambdas=[0.3, 0.05], candidates="target_incident", iterations=15,
        )
        jobs += grid_jobs("random", [[t] for t in targets[:3]], budgets=[3],
                          candidates="target_incident", rng=5)
        jobs += grid_jobs("oddball-heuristic", [[t] for t in targets[:3]],
                          budgets=[3], rng=3)
        serial = AttackCampaign(graph).run(jobs)
        parallel = ParallelCampaignExecutor(graph, workers=3).run(jobs)
        assert_outcomes_identical(serial, parallel)

    def test_more_workers_than_jobs(self, graph_and_targets, sweep_jobs):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=2)
        result = ParallelCampaignExecutor(graph, workers=6).run(jobs)
        assert len(result) == 2

    def test_worker_observability(self, graph_and_targets, sweep_jobs):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=6)
        executor = ParallelCampaignExecutor(graph, workers=3)
        executor.run(jobs)
        assert [len(s) for s in executor.last_shards] == [2, 2, 2]
        assert len(executor.last_worker_stats) == 3
        for stats in executor.last_worker_stats:
            assert stats["jobs"] == 2
            assert stats["cpu_seconds"] >= 0.0
            assert stats["wall_seconds"] > 0.0
        assert executor.last_overhead_seconds >= 0.0

    def test_build_campaign_switch(self, graph_and_targets):
        graph, _ = graph_and_targets
        assert isinstance(build_campaign(graph, workers=1), AttackCampaign)
        assert isinstance(
            build_campaign(graph, workers=2), ParallelCampaignExecutor
        )

    def test_rejects_bad_worker_count(self, graph_and_targets):
        graph, _ = graph_and_targets
        with pytest.raises(ValueError, match="workers"):
            ParallelCampaignExecutor(graph, workers=0)


class TestCheckpointInterop:
    def test_kill_and_resume_with_different_worker_count(
        self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical
    ):
        """A parallel run killed mid-shard resumes under a new worker count.

        The kill is simulated faithfully: two worker shards are drained
        directly via the executor's worker entry point (as a killed
        2-worker run would leave them — completed jobs in per-worker shard
        files, never merged), then a fresh 3-worker executor must fold the
        leftovers in, run only the remainder, and match a fresh serial run
        bit-for-bit.
        """
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        fresh = AttackCampaign(graph).run(jobs)

        checkpoint = tmp_path / "campaign.jsonl"
        spec = EngineSpec.from_graph(graph.adjacency, backend="auto")
        _worker_main(spec, jobs[0:3], str(checkpoint) + ".shard0", True)
        _worker_main(spec, jobs[3:5], str(checkpoint) + ".shard1", True)
        assert (tmp_path / "campaign.jsonl.shard0").exists()
        assert not checkpoint.exists()  # parent never merged: a true kill

        resumed = ParallelCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 5
        assert not list(tmp_path.glob("*.shard*"))  # shards merged + removed
        assert_outcomes_identical(fresh, resumed)

    def test_glob_metacharacters_in_checkpoint_name(
        self, graph_and_targets, tmp_path, sweep_jobs
    ):
        """Shard discovery is a literal prefix match, not a glob — a name
        like ``fig4[ci].json`` must not turn into a character class."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=4)
        checkpoint = tmp_path / "fig4[ci].json"
        first = ParallelCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        assert len(first) == 4
        assert not list(tmp_path.glob("*.shard*"))
        resumed = ParallelCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 4

    def test_parallel_resumes_serial_checkpoint(self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs[:4])
        resumed = ParallelCampaignExecutor(
            graph, workers=4, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 4
        assert_outcomes_identical(AttackCampaign(graph).run(jobs), resumed)

    def test_serial_resumes_parallel_checkpoint(self, graph_and_targets, tmp_path, sweep_jobs):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        checkpoint = tmp_path / "campaign.jsonl"
        ParallelCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        resumed = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        assert resumed.resumed_jobs == len(jobs)

    def test_fully_checkpointed_run_spawns_no_workers(
        self, graph_and_targets, tmp_path, sweep_jobs
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=3)
        checkpoint = tmp_path / "campaign.jsonl"
        ParallelCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        executor = ParallelCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        )
        replay = executor.run(jobs)
        assert replay.resumed_jobs == 3
        assert executor.last_shards == []

    def test_checkpoint_rejects_different_graph(self, graph_and_targets, tmp_path, sweep_jobs):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=2)
        checkpoint = tmp_path / "campaign.jsonl"
        ParallelCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        other = barabasi_albert(90, 3, rng=99)
        with pytest.raises(ValueError, match="different"):
            ParallelCampaignExecutor(
                other, workers=2, checkpoint_path=checkpoint
            ).run(sweep_jobs(OddBall().analyze(other).top_k(2).tolist(), count=2))


class TestEngineSpec:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_round_trip_preserves_state(self, graph_and_targets, backend):
        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(
            graph.adjacency, targets[:3], None, backend=backend
        )
        clone = SurrogateEngine.from_spec(engine.engine_spec(), targets[:3])
        assert clone.backend == engine.backend
        assert clone.current_loss() == engine.current_loss()
        for a, b in zip(engine.node_features(), clone.node_features()):
            assert np.array_equal(a, b)

    def test_spec_captures_applied_flips(self, graph_and_targets):
        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(
            sparse.csr_matrix(graph.adjacency), targets[:2], None,
            backend="sparse",
        )
        engine.apply_flip(0, 1)
        clone = SurrogateEngine.from_spec(engine.engine_spec(), targets[:2])
        assert clone.is_edge(0, 1) == engine.is_edge(0, 1)
        assert clone.current_loss() == engine.current_loss()

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_spec_rejects_pending_transient_flips(self, graph_and_targets, backend):
        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(
            graph.adjacency, targets[:2], None, backend=backend
        )
        engine.push_flip(0, 1)
        with pytest.raises(RuntimeError, match="transient"):
            engine.engine_spec()
        engine.pop_flips(1)
        engine.engine_spec()  # clean again — exports fine

    def test_sparse_spec_allows_permanent_flips_after_restore(
        self, graph_and_targets
    ):
        graph, targets = graph_and_targets
        engine = SurrogateEngine.create(
            sparse.csr_matrix(graph.adjacency), targets[:2], None,
            backend="sparse",
        )
        token = engine.checkpoint()
        engine.apply_flip(0, 1)       # permanent: spec export stays legal
        engine.engine_spec()
        engine.push_flip(0, 2)        # transient on top: export refused
        with pytest.raises(RuntimeError, match="transient"):
            engine.engine_spec()
        engine.restore(token)         # restore clears the transient state
        engine.engine_spec()

    def test_from_graph_resolves_auto(self, graph_and_targets):
        graph, _ = graph_and_targets
        spec = EngineSpec.from_graph(graph.adjacency, backend="auto")
        assert spec.backend in ("dense", "sparse")
        rebuilt = spec.to_graph()
        assert rebuilt.shape == graph.adjacency.shape

    def test_spec_rejects_unresolved_backend(self, graph_and_targets):
        graph, targets = graph_and_targets
        spec = EngineSpec.from_graph(graph.adjacency)._replace(backend="auto")
        with pytest.raises(ValueError, match="resolved"):
            SurrogateEngine.from_spec(spec, targets[:1])

    def test_spec_is_picklable(self, graph_and_targets):
        import pickle

        graph, targets = graph_and_targets
        spec = EngineSpec.from_graph(
            sparse.csr_matrix(graph.adjacency), backend="sparse"
        )
        clone = pickle.loads(pickle.dumps(spec))
        engine = clone.build(targets[:2])
        reference = spec.build(targets[:2])
        assert engine.current_loss() == reference.current_loss()


class TestBaselineEngineInjection:
    """ROADMAP follow-up: baselines accept an injected engine too."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_random_attack_parity(self, graph_and_targets, backend):
        graph, targets = graph_and_targets
        adjacency = (
            sparse.csr_matrix(graph.adjacency)
            if backend == "sparse"
            else graph.adjacency
        )
        engine = SurrogateEngine.create(
            adjacency, targets[:2], None, backend=backend
        )
        standalone = RandomAttack(rng=7).attack(
            adjacency, targets[:2], 4, candidates="target_incident"
        )
        injected = RandomAttack(rng=7).attack(
            adjacency, targets[:2], 4, candidates="target_incident",
            engine=engine,
        )
        assert standalone.flips_by_budget == injected.flips_by_budget
        assert standalone.surrogate_by_budget == injected.surrogate_by_budget
        if backend == "sparse":
            assert engine.checkpoint() == 0  # engine left exactly as it entered

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_heuristic_parity(self, graph_and_targets, backend):
        graph, targets = graph_and_targets
        adjacency = (
            sparse.csr_matrix(graph.adjacency)
            if backend == "sparse"
            else graph.adjacency
        )
        engine = SurrogateEngine.create(
            adjacency, targets[:2], None, backend=backend
        )
        before = engine.current_loss()
        standalone = OddBallHeuristic(rng=3).attack(adjacency, targets[:2], 4)
        injected = OddBallHeuristic(rng=3).attack(
            adjacency, targets[:2], 4, engine=engine
        )
        assert standalone.flips_by_budget == injected.flips_by_budget
        assert standalone.surrogate_by_budget == injected.surrogate_by_budget
        assert engine.current_loss() == before  # every flip unwound

    def test_campaign_baseline_jobs_match_standalone(self, graph_and_targets):
        graph, targets = graph_and_targets
        jobs = grid_jobs("random", [[t] for t in targets[:3]], budgets=[4],
                         candidates="target_incident", rng=5)
        jobs += grid_jobs("oddball-heuristic", [[t] for t in targets[:3]],
                          budgets=[4], rng=3)
        campaign = AttackCampaign(graph).run(jobs)
        for outcome in campaign:
            cls = (
                RandomAttack
                if outcome.job.attack == "random"
                else OddBallHeuristic
            )
            solo = cls(**dict(outcome.job.params)).attack(
                graph, list(outcome.job.targets), outcome.job.budget,
                candidates=outcome.job.candidates,
            )
            assert {
                b: solo.flips(b) for b in solo.budgets
            } == outcome.flips_by_budget, outcome.job.attack
            assert solo.surrogate_by_budget == outcome.surrogate_by_budget


class TestWorkerFailure:
    def test_dead_worker_raises_and_preserves_completed_jobs(
        self, graph_and_targets, tmp_path, monkeypatch, sweep_jobs, assert_outcomes_identical
    ):
        """A worker that dies mid-shard fails the run loudly, but the jobs
        it completed stay in the merged checkpoint for the next resume."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=6)
        checkpoint = tmp_path / "campaign.jsonl"

        import repro.attacks.executor as executor_module

        real_worker = executor_module._worker_main

        def flaky_worker(spec, shard, shard_path, compute_ranks):
            if shard_path.endswith(".shard1"):
                raise SystemExit(1)  # dies before touching its shard
            real_worker(spec, shard, shard_path, compute_ranks)

        monkeypatch.setattr(executor_module, "_worker_main", flaky_worker)
        with pytest.raises(RuntimeError, match="exited abnormally"):
            ParallelCampaignExecutor(
                graph, workers=2, checkpoint_path=checkpoint
            ).run(jobs)
        # worker 0's three jobs were merged into the main checkpoint
        completed = [
            json.loads(line)
            for line in checkpoint.read_text().splitlines()[1:]
        ]
        assert len(completed) == 3
        # an undamaged rerun resumes them and matches a fresh serial run
        monkeypatch.undo()
        resumed = ParallelCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 3
        assert_outcomes_identical(AttackCampaign(graph).run(jobs), resumed)

"""Property-based invariants common to all attack methods."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.attacks import BinarizedAttack, ContinuousA, GradMaxSearch, RandomAttack
from repro.graph.generators import barabasi_albert
from repro.oddball.detector import OddBall

ATTACK_FACTORIES = [
    lambda: GradMaxSearch(),
    lambda: ContinuousA(max_iter=25),
    lambda: BinarizedAttack(iterations=20, lambdas=(0.2,)),
    lambda: RandomAttack(rng=0),
]


@pytest.mark.parametrize("factory", ATTACK_FACTORIES, ids=["gradmax", "continuous", "binarized", "random"])
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(15, 35), budget=st.integers(0, 6), seed=st.integers(0, 5))
def test_attack_output_is_valid_bounded_poison(factory, n, budget, seed):
    """For any graph/targets/budget: the poison is a valid simple graph,
    within budget, differing from the original in exactly the flip set."""
    graph = barabasi_albert(n, 2, rng=seed)
    report = OddBall().analyze(graph)
    targets = report.top_k(2).tolist()
    attack = factory()
    result = attack.attack(graph, targets, budget)

    flips = result.flips()
    assert len(flips) <= budget
    poisoned = result.poisoned()
    original = graph.adjacency

    # valid simple graph
    assert np.array_equal(poisoned, poisoned.T)
    assert set(np.unique(poisoned)) <= {0.0, 1.0}
    assert np.diagonal(poisoned).sum() == 0.0

    # the symmetric difference is exactly the flip set
    changed = {(min(u, v), max(u, v)) for u, v in zip(*np.nonzero(np.triu(poisoned != original)))}
    assert changed == set(flips)

    # no singletons created
    assert not ((poisoned.sum(axis=1) == 0) & (original.sum(axis=1) > 0)).any()

"""Property harness for the PRBCD block candidate engine.

Locks the ``block`` strategy's contracts: |candidates| ≤ block_size at
every step, flipped pairs are never evicted, identical seeds reproduce
identical candidate sequences across dense/sparse backends and
numpy/compiled kernels, the degenerate block (covering every pair) selects
bit-identical flips to ``full`` for every ``SHARED_ENGINE_ATTACKS`` member,
and the candidate footprint stays O(block_size) regardless of n.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import (
    AttackCampaign,
    BinarizedAttack,
    BlockCandidateSet,
    CandidateSet,
    ContinuousA,
    GradMaxSearch,
    OddBallHeuristic,
    RandomAttack,
    grid_jobs,
)
from repro.attacks.candidates import admission_cap, default_block_size
from repro.kernels import compiled_available
from repro.oddball.surrogate import SparseSurrogateEngine, SurrogateEngine

requires_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="no C toolchain/cffi on this host; compiled backend unavailable",
)


def _total(n):
    return n * (n - 1) // 2


def _drive_schedule(
    graph, targets, *, block_size, seed, steps=6, schedule_seed=0,
    backend="sparse", kernels="numpy",
):
    """Run a seeded flip/refresh schedule, asserting the block invariants.

    Returns the per-step (rows, cols) history so callers can compare
    candidate sequences across engine configurations.
    """
    n = graph.number_of_nodes
    block = BlockCandidateSet.start(n, block_size=block_size, seed=seed)
    adjacency = (
        sparse.csr_matrix(graph.adjacency)
        if backend == "sparse"
        else graph.adjacency
    )
    kwargs = {"kernels": kernels} if backend == "sparse" else {}
    engine = SurrogateEngine.create(
        adjacency, targets, block, backend=backend, **kwargs
    )
    picker = np.random.default_rng(schedule_seed)
    history, flipped = [], []
    for _ in range(steps):
        index = int(picker.integers(len(block)))
        pair = (int(block.rows[index]), int(block.cols[index]))
        engine.apply_flip(*pair)
        flipped.append(pair)
        block = block.refresh([pair], engine)
        engine.set_candidates(block)
        assert len(block) <= block_size
        assert set(flipped) <= block.pair_set()
        assert set(flipped) <= set(block.flipped)
        keys = block.rows * n + block.cols
        assert np.all(np.diff(keys) > 0)  # canonical order, no duplicates
        history.append((block.rows.copy(), block.cols.copy()))
    return history


class TestBlockSampling:
    def test_start_is_seed_deterministic(self):
        a = BlockCandidateSet.start(60, block_size=128, seed=3)
        b = BlockCandidateSet.start(60, block_size=128, seed=3)
        other = BlockCandidateSet.start(60, block_size=128, seed=4)
        assert a.same_pairs(b)
        assert not a.same_pairs(other)

    def test_pairs_are_canonical_unique_and_in_range(self):
        block = BlockCandidateSet.start(97, block_size=500, seed=1)
        assert np.all(block.rows < block.cols)
        assert np.all((block.rows >= 0) & (block.cols < 97))
        keys = block.rows * 97 + block.cols
        assert np.unique(keys).size == keys.size
        assert 0 < len(block) <= 500

    def test_block_size_clamps_to_the_triangle(self):
        block = BlockCandidateSet.start(10, block_size=10**6)
        assert len(block) == _total(10)
        assert block.is_degenerate_full
        rows, cols = np.triu_indices(10, k=1)
        assert np.array_equal(block.rows, rows)
        assert np.array_equal(block.cols, cols)

    def test_rejects_degenerate_graphs_and_sizes(self):
        with pytest.raises(ValueError):
            BlockCandidateSet.start(1, block_size=8)
        with pytest.raises(ValueError):
            BlockCandidateSet.start(10, block_size=0)

    def test_build_dispatch_ignores_targets(self, small_ba_graph):
        block = CandidateSet.build(
            "block", small_ba_graph, targets=[0, 1],
            budget=3, block_size=64, block_seed=5,
        )
        assert isinstance(block, BlockCandidateSet)
        assert block.strategy == "block"
        assert block.seed == 5 and len(block) <= 64

    def test_budget_scaled_size_and_admission_policies(self):
        assert default_block_size(10**6) == 32_768
        assert default_block_size(10**6, budget=16) == 4096 * 16
        assert default_block_size(90, budget=100) == _total(90)
        assert admission_cap(None) == 32
        assert admission_cap(2) == 32
        assert admission_cap(100) == 800


class TestBlockRefreshInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_schedule_holds_every_invariant(self, small_ba_graph, seed):
        _drive_schedule(
            small_ba_graph, [0, 1, 2], block_size=128, seed=seed,
            schedule_seed=seed + 10,
        )

    def test_refresh_without_engine_raises(self):
        block = BlockCandidateSet.start(60, block_size=64)
        with pytest.raises(ValueError, match="engine"):
            block.refresh([(0, 1)])

    def test_degenerate_refresh_returns_self(self):
        block = BlockCandidateSet.start(10, block_size=10**6)
        assert block.refresh([(0, 1)]) is block

    def test_refresh_resamples_and_advances_the_draw(self, small_ba_graph):
        targets = [0, 1]
        block = BlockCandidateSet.start(60, block_size=64, seed=9)
        engine = SurrogateEngine.create(
            sparse.csr_matrix(small_ba_graph.adjacency), targets, block,
            backend="sparse",
        )
        refreshed = block.refresh([], engine)
        assert refreshed.draw == block.draw + 1
        assert not refreshed.same_pairs(block)  # the low-gradient half left
        assert len(refreshed) <= 64

    def test_flipped_pairs_survive_many_refreshes(self, small_ba_graph):
        targets = [0, 1]
        block = BlockCandidateSet.start(60, block_size=64, seed=2)
        engine = SurrogateEngine.create(
            sparse.csr_matrix(small_ba_graph.adjacency), targets, block,
            backend="sparse",
        )
        pair = (int(block.rows[0]), int(block.cols[0]))
        engine.apply_flip(*pair)
        block = block.refresh([pair], engine)
        for _ in range(5):
            block = block.refresh([], engine)
            assert pair in block.pair_set()
            assert block.flipped == frozenset({pair})


class TestTransferPositions:
    def test_survivors_map_and_evicted_get_minus_one(self):
        old = CandidateSet(
            n=8,
            rows=np.array([0, 1, 2], dtype=np.intp),
            cols=np.array([3, 4, 5], dtype=np.intp),
        )
        new = CandidateSet(
            n=8,
            rows=np.array([0, 2, 6], dtype=np.intp),
            cols=np.array([3, 5, 7], dtype=np.intp),
        )
        positions = new.transfer_positions(old.rows, old.cols)
        assert positions.tolist() == [0, -1, 1]

    def test_empty_set_maps_everything_to_minus_one(self):
        empty = CandidateSet(
            n=5,
            rows=np.empty(0, dtype=np.intp),
            cols=np.empty(0, dtype=np.intp),
        )
        positions = empty.transfer_positions(
            np.array([0], dtype=np.intp), np.array([1], dtype=np.intp)
        )
        assert positions.tolist() == [-1]

    def test_same_pairs_sees_membership_change_at_equal_length(self):
        a = CandidateSet(
            n=6,
            rows=np.array([0, 1], dtype=np.intp),
            cols=np.array([2, 3], dtype=np.intp),
        )
        b = CandidateSet(
            n=6,
            rows=np.array([0, 1], dtype=np.intp),
            cols=np.array([2, 4], dtype=np.intp),
        )
        assert len(a) == len(b)
        assert not a.same_pairs(b)
        assert a.same_pairs(a)


class TestBlockSequenceBackendParity:
    """Identical seeds must reproduce identical candidate sequences no
    matter which engine configuration evaluates the gradients."""

    def test_dense_and_sparse_sequences_are_identical(self, small_ba_graph):
        targets = [0, 1, 2]
        dense = _drive_schedule(
            small_ba_graph, targets, block_size=128, seed=5, backend="dense"
        )
        fast = _drive_schedule(
            small_ba_graph, targets, block_size=128, seed=5, backend="sparse"
        )
        for (r_a, c_a), (r_b, c_b) in zip(dense, fast):
            assert np.array_equal(r_a, r_b)
            assert np.array_equal(c_a, c_b)

    @requires_compiled
    def test_numpy_and_compiled_sequences_are_identical(self, small_ba_graph):
        targets = [0, 1, 2]
        ref = _drive_schedule(
            small_ba_graph, targets, block_size=128, seed=5, kernels="numpy"
        )
        fast = _drive_schedule(
            small_ba_graph, targets, block_size=128, seed=5, kernels="compiled"
        )
        for (r_a, c_a), (r_b, c_b) in zip(ref, fast):
            assert np.array_equal(r_a, r_b)
            assert np.array_equal(c_a, c_b)

    def test_same_seed_reruns_identically_and_seeds_differ(self, small_ba_graph):
        targets = [0, 1, 2]
        first = _drive_schedule(small_ba_graph, targets, block_size=128, seed=7)
        again = _drive_schedule(small_ba_graph, targets, block_size=128, seed=7)
        other = _drive_schedule(small_ba_graph, targets, block_size=128, seed=8)
        for (r_a, c_a), (r_b, c_b) in zip(first, again):
            assert np.array_equal(r_a, r_b)
            assert np.array_equal(c_a, c_b)
        assert any(
            not np.array_equal(r_a, r_b)
            for (r_a, _), (r_b, _) in zip(first, other)
        )


class TestBlockDegenerateParity:
    """``block`` with block_size ≥ n(n−1)/2 must select bit-identical flips
    to ``full`` for every attack in ``SHARED_ENGINE_ATTACKS`` — the anchor
    that makes sub-full blocks a pure memory/quality trade."""

    ENGINE_CASES = {
        "binarizedattack": (BinarizedAttack, {"iterations": 12}),
        "gradmaxsearch": (GradMaxSearch, {}),
        "continuousa": (ContinuousA, {"max_iter": 12}),
    }

    @pytest.mark.parametrize("name", sorted(ENGINE_CASES))
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_engine_attacks_match_full(self, graph_and_targets, name, backend):
        graph, targets = graph_and_targets
        attack_cls, params = self.ENGINE_CASES[name]
        full = attack_cls(backend=backend, **params).attack(
            graph, targets[:3], 4, candidates="full"
        )
        block = attack_cls(backend=backend, block_size=10**9, **params).attack(
            graph, targets[:3], 4, candidates="block"
        )
        assert block.flips_by_budget == full.flips_by_budget
        for budget, loss in full.surrogate_by_budget.items():
            assert block.surrogate_by_budget[budget] == pytest.approx(
                loss, rel=1e-9
            )

    def test_random_baseline_matches_full(self, graph_and_targets):
        # registry name: "random"
        graph, targets = graph_and_targets
        degenerate = BlockCandidateSet.start(
            graph.number_of_nodes, block_size=_total(graph.number_of_nodes)
        )
        full = RandomAttack(rng=13).attack(
            graph.adjacency, targets[:3], 4, candidates="full"
        )
        block = RandomAttack(rng=13).attack(
            graph.adjacency, targets[:3], 4, candidates=degenerate
        )
        assert block.flips_by_budget == full.flips_by_budget
        assert block.surrogate_by_budget == full.surrogate_by_budget

    def test_heuristic_baseline_matches_full(self, graph_and_targets):
        # registry name: "oddball-heuristic"
        graph, targets = graph_and_targets
        degenerate = BlockCandidateSet.start(
            graph.number_of_nodes, block_size=_total(graph.number_of_nodes)
        )
        assert degenerate.is_full  # so the heuristic skips membership tests
        full = OddBallHeuristic(rng=13).attack(
            graph.adjacency, targets[:3], 4, candidates="full"
        )
        block = OddBallHeuristic(rng=13).attack(
            graph.adjacency, targets[:3], 4, candidates=degenerate
        )
        assert block.flips_by_budget == full.flips_by_budget
        assert block.surrogate_by_budget == full.surrogate_by_budget

    def test_campaign_jobs_default_block_is_degenerate_at_small_n(
        self, graph_and_targets
    ):
        """At n=90 the budget-scaled default block covers the whole triangle,
        so ``candidates="block"`` campaign jobs — including the baselines,
        which take no block parameters — must reproduce ``full`` outcomes."""
        graph, targets = graph_and_targets
        specs = [
            ("gradmaxsearch", {}),
            ("binarizedattack", {"iterations": 12}),
            ("random", {"rng": 5}),
            ("oddball-heuristic", {"rng": 5}),
        ]
        full_jobs, block_jobs = (
            [
                grid_jobs(name, [targets[:2]], budgets=[3],
                          candidates=strategy, **params)[0]
                for name, params in specs
            ]
            for strategy in ("full", "block")
        )
        full_run = AttackCampaign(graph).run(full_jobs)
        block_run = AttackCampaign(graph).run(block_jobs)
        for a, b in zip(full_run, block_run):
            assert a.job_id != b.job_id  # the strategy is content-hashed
            assert a.flips_by_budget == b.flips_by_budget
            assert a.surrogate_by_budget == b.surrogate_by_budget


class TestBlockBoundedMemory:
    """The tentpole's memory contract: candidate state is O(block_size),
    independent of n."""

    def test_candidate_arrays_never_exceed_block_size(self, store, monkeypatch):
        recorded = []
        original = SparseSurrogateEngine.set_candidates

        def recording(self, candidates=None):
            original(self, candidates)
            recorded.append(int(self.rows.size))

        monkeypatch.setattr(SparseSurrogateEngine, "set_candidates", recording)
        targets = np.argsort(-store.degrees(), kind="stable")[:2].tolist()
        result = BinarizedAttack(
            iterations=8, backend="sparse", block_size=96, block_seed=1
        ).attack(store.detached_csr(), targets, budget=4, candidates="block")
        assert recorded  # the refresh loop actually re-pointed the engine
        assert max(recorded) <= 96
        assert result.metadata["candidate_strategy"] == "block"
        assert result.metadata["decision_variables"] <= 96

    def test_worker_rss_does_not_scale_with_n(self, tmp_path):
        """A 9× pair-count increase must not move worker RSS by more than a
        fixed margin — far below the hundreds of MB full-pair decision
        arrays would add at the larger scale."""
        from repro.attacks import ParallelCampaignExecutor
        from repro.store import build_store

        peaks = {}
        for scale in (2.0, 6.0):
            store = build_store(
                "blogcatalog", cache_dir=tmp_path, scale=scale, seed=11
            )
            targets = np.argsort(-store.degrees(), kind="stable")[:2]
            jobs = grid_jobs(
                "gradmaxsearch", [[int(t)] for t in targets], budgets=[2],
                candidates="block", block_size=8192,
            )
            executor = ParallelCampaignExecutor(store, workers=2)
            executor.run(jobs)
            peaks[scale] = max(
                s["max_rss_kb"] for s in executor.last_worker_stats
            )
        assert peaks[2.0] > 0
        assert peaks[6.0] <= peaks[2.0] + 64 * 1024  # kB: flat, not O(n²)

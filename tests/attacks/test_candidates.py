"""Tests for the CandidateSet abstraction."""

import numpy as np
import pytest
from scipy import sparse

from repro.attacks.candidates import CANDIDATE_STRATEGIES, CandidateSet
from repro.graph.graph import Graph


class TestFull:
    def test_matches_triu_order(self):
        candidate_set = CandidateSet.full(6)
        rows, cols = np.triu_indices(6, k=1)
        np.testing.assert_array_equal(candidate_set.rows, rows)
        np.testing.assert_array_equal(candidate_set.cols, cols)
        assert candidate_set.is_full
        assert candidate_set.density == 1.0
        assert len(candidate_set) == 15

    def test_trivial_sizes(self):
        assert len(CandidateSet.full(0)) == 0
        assert len(CandidateSet.full(1)) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CandidateSet.full(-1)


class TestTargetIncident:
    def test_every_pair_touches_a_target(self):
        candidate_set = CandidateSet.target_incident(8, [2, 5])
        for u, v in candidate_set.pairs():
            assert u in (2, 5) or v in (2, 5)

    def test_size_formula(self):
        n, t = 10, 3
        candidate_set = CandidateSet.target_incident(n, [0, 4, 7])
        assert len(candidate_set) == t * (n - 1) - t * (t - 1) // 2

    def test_sorted_canonical_unique(self):
        candidate_set = CandidateSet.target_incident(7, [6, 1])
        pairs = candidate_set.pairs()
        assert pairs == sorted(set(pairs))
        assert all(u < v for u, v in pairs)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CandidateSet.target_incident(5, [])

    def test_out_of_range_targets_rejected(self):
        with pytest.raises(ValueError, match="range"):
            CandidateSet.target_incident(5, [5])


class TestTwoHop:
    def test_covers_the_distance_two_ball(self):
        # Path graph 0-1-2-3-4-5; target 0 reaches {0, 1, 2} within 2 hops.
        graph = Graph.from_edges(6, [(i, i + 1) for i in range(5)])
        candidate_set = CandidateSet.two_hop(graph, [0])
        assert set(candidate_set.pairs()) == {(0, 1), (0, 2), (1, 2)}

    def test_superset_of_target_incident_restricted_to_ball(self, small_ba_graph):
        targets = [0, 7]
        two_hop = CandidateSet.two_hop(small_ba_graph, targets)
        ball = {u for pair in two_hop.pairs() for u in pair}
        incident = CandidateSet.target_incident(small_ba_graph.number_of_nodes, targets)
        in_ball_incident = {
            pair for pair in incident.pairs() if pair[0] in ball and pair[1] in ball
        }
        assert in_ball_incident <= set(two_hop.pairs())

    def test_accepts_sparse_adjacency(self, small_er_graph):
        dense_set = CandidateSet.two_hop(small_er_graph, [3])
        sparse_set = CandidateSet.two_hop(
            sparse.csr_matrix(small_er_graph.adjacency), [3]
        )
        assert dense_set.pairs() == sparse_set.pairs()


class TestBuild:
    @pytest.mark.parametrize("strategy", CANDIDATE_STRATEGIES)
    def test_dispatch(self, small_er_graph, strategy):
        candidate_set = CandidateSet.build(strategy, small_er_graph, [0, 1])
        assert candidate_set.strategy == strategy
        assert candidate_set.n == small_er_graph.number_of_nodes
        assert len(candidate_set) > 0

    def test_unknown_strategy(self, small_er_graph):
        with pytest.raises(ValueError, match="unknown candidate strategy"):
            CandidateSet.build("everything", small_er_graph, [0])

    def test_targets_required_except_full(self, small_er_graph):
        assert CandidateSet.build("full", small_er_graph).is_full
        with pytest.raises(ValueError, match="requires a target set"):
            CandidateSet.build("target_incident", small_er_graph)

    def test_strategies_nest(self, small_ba_graph):
        """target_incident ⊆ full; both restrict what the attack may flip."""
        targets = [1, 4]
        full = CandidateSet.build("full", small_ba_graph, targets)
        incident = CandidateSet.build("target_incident", small_ba_graph, targets)
        assert set(incident.pairs()) <= set(full.pairs())
        assert len(incident) < len(full)


class TestFromPairsAndValidation:
    def test_canonicalises_and_deduplicates(self):
        candidate_set = CandidateSet.from_pairs(5, [(3, 1), (1, 3), (0, 4)])
        assert candidate_set.pairs() == [(0, 4), (1, 3)]

    def test_rejects_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            CandidateSet.from_pairs(5, [(2, 2)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            CandidateSet.from_pairs(3, [(0, 3)])

    def test_rejects_non_canonical_arrays(self):
        with pytest.raises(ValueError, match="canonical"):
            CandidateSet(n=4, rows=np.array([2]), cols=np.array([1]))

    def test_rejects_unsorted_arrays(self):
        with pytest.raises(ValueError, match="sorted"):
            CandidateSet(n=4, rows=np.array([0, 0]), cols=np.array([2, 1]))

    def test_membership(self):
        candidate_set = CandidateSet.from_pairs(5, [(1, 2)])
        assert (1, 2) in candidate_set
        assert (2, 1) in candidate_set  # canonicalised lookup
        assert (0, 1) not in candidate_set


class TestSparseExplicitZeros:
    def test_two_hop_ignores_stored_zeros(self):
        """Stored explicit zeros are valid zero entries (see to_sparse) and
        must not be treated as neighbours when building the two-hop ball."""
        # path graph 0-1-2 plus an explicit stored zero at (0, 3)
        data = np.array([1.0, 1.0, 1.0, 1.0, 0.0, 0.0])
        rows = np.array([0, 1, 1, 2, 0, 3])
        cols = np.array([1, 0, 2, 1, 3, 0])
        matrix = sparse.csr_matrix((data, (rows, cols)), shape=(5, 5))
        assert matrix.nnz == 6
        candidate_set = CandidateSet.two_hop(matrix, [0])
        assert set(candidate_set.pairs()) == {(0, 1), (0, 2), (1, 2)}


class TestGradientGrowth:
    """AdaptiveCandidateSet with growth="gradient": admissions ranked by the
    engine's predicted |dL/dA|, capped per refresh, superset invariant held."""

    def _engine(self, graph, targets, candidate_set):
        from repro.oddball.surrogate import SurrogateEngine

        return SurrogateEngine.create(
            graph.adjacency_view, targets, candidate_set, backend="sparse"
        )

    def _setup(self):
        from repro.attacks.candidates import AdaptiveCandidateSet
        from repro.graph.generators import barabasi_albert

        graph = barabasi_albert(200, 8, rng=9)
        targets = [0, 1]
        candidate_set = AdaptiveCandidateSet.start(200, targets, growth="gradient")
        return graph, targets, candidate_set

    def test_strategy_name_registered(self):
        from repro.attacks.candidates import (
            CANDIDATE_STRATEGIES,
            CandidateSet,
        )
        from repro.graph.generators import erdos_renyi

        assert "adaptive_gradient" in CANDIDATE_STRATEGIES
        graph = erdos_renyi(30, 0.2, rng=0)
        built = CandidateSet.build("adaptive_gradient", graph, [1, 2])
        assert built.strategy == "adaptive_gradient"
        assert built.growth == "gradient"

    def test_starts_as_exact_target_incident(self):
        _, targets, candidate_set = self._setup()
        base = CandidateSet.target_incident(200, targets)
        assert candidate_set.pairs() == base.pairs()

    def test_refresh_is_superset_of_previous_and_base(self):
        graph, targets, candidate_set = self._setup()
        engine = self._engine(graph, targets, candidate_set)
        base_pairs = set(CandidateSet.target_incident(200, targets).pairs())
        current = candidate_set
        for flip in [(5, 30), (30, 77), (77, 101)]:
            engine.apply_flip(*flip)
            grown = current.refresh([flip], engine)
            assert base_pairs <= set(grown.pairs())
            assert set(current.pairs()) <= set(grown.pairs())
            # remap (the attack-state contract) must succeed on every pair
            grown.remap_positions(current.rows, current.cols)
            current = grown

    def test_admissions_capped_and_gradient_ranked(self):
        from repro.attacks.candidates import AdaptiveCandidateSet

        graph, targets, candidate_set = self._setup()
        engine = self._engine(graph, targets, candidate_set)
        # flip to a hub so the admission pool exceeds the cap
        degrees = engine.degrees()
        hub = int(np.argmax(degrees))
        if hub in (0, 1):
            hub = int(np.argsort(-degrees)[2])
        engine.apply_flip(0, hub)
        grown = candidate_set.refresh([(0, hub)], engine)
        added = set(grown.pairs()) - set(candidate_set.pairs())
        cap = candidate_set.admit_cap
        assert 0 < len(added) <= cap
        # adjacency growth over the same pool admits strictly more
        adjacency_grown = AdaptiveCandidateSet(
            n=candidate_set.n, rows=candidate_set.rows, cols=candidate_set.cols,
            strategy="adaptive", ball=candidate_set.ball, growth="adjacency",
        ).refresh([(0, hub)], engine)
        pool = set(adjacency_grown.pairs()) - set(candidate_set.pairs())
        assert added < pool
        # the admitted pairs are exactly the top-|gradient| slice of the pool
        pool_pairs = sorted(pool)
        rows = np.array([u for u, _ in pool_pairs], dtype=np.intp)
        cols = np.array([v for _, v in pool_pairs], dtype=np.intp)
        magnitude = np.abs(engine.pair_gradient(rows, cols))
        keys = rows * candidate_set.n + cols
        order = np.lexsort((keys, -magnitude))
        expected = {
            (int(rows[k]), int(cols[k])) for k in order[:cap]
        }
        assert added == expected

    def test_refresh_without_engine_raises(self):
        _, _, candidate_set = self._setup()
        with pytest.raises(ValueError, match="engine"):
            candidate_set.refresh([(5, 30)])

    def test_pair_gradient_backends_agree(self):
        from repro.graph.generators import erdos_renyi
        from repro.oddball.surrogate import SurrogateEngine

        graph = erdos_renyi(40, 0.15, rng=2)
        targets = [3, 7]
        rows = np.array([0, 2, 5], dtype=np.intp)
        cols = np.array([9, 11, 30], dtype=np.intp)
        dense = SurrogateEngine.create(
            graph.adjacency_view, targets, backend="dense"
        )
        sparse_engine = SurrogateEngine.create(
            graph.adjacency_view, targets,
            (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)),
            backend="sparse",
        )
        np.testing.assert_allclose(
            dense.pair_gradient(rows, cols),
            sparse_engine.pair_gradient(rows, cols),
            rtol=1e-9, atol=1e-12,
        )

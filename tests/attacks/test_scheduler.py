"""Scheduler semantics: work-stealing is a wall-clock/fault-tolerance
lever, never a semantics change.  A queue-drained run must be bit-identical
to the serial :class:`AttackCampaign`, checkpoints must interoperate with
the serial campaign and the static executor, a SIGKILL'd worker's jobs must
be requeued and recovered (chaos tests), and a job legitimately completed
twice must keep exactly one record in the merged checkpoint."""

import json
import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.attacks import (
    AttackCampaign,
    ParallelCampaignExecutor,
    SchedulingCampaignExecutor,
    WorkQueue,
    build_campaign,
    grid_jobs,
)
from repro.attacks.campaign import CheckpointStore, JobOutcome
from repro.attacks.scheduler import (
    DEFAULT_LEASE_TTL,
    LEASE_TTL_ENV,
    LeaseHeartbeat,
    resolve_lease_ttl,
)
pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="scheduler chaos tests monkeypatch worker entry points through fork",
)

# graph_and_targets / sweep_jobs / assert_outcomes_identical come from
# tests/conftest.py (shared campaign fixtures)


class FakeClock:
    """Deterministic stand-in for ``time.monotonic`` (lease-expiry tests)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _queue_jobs(count=5):
    return grid_jobs(
        "gradmaxsearch", [[t] for t in range(count)], budgets=[1],
        candidates="target_incident",
    )


class TestLeaseTtlResolution:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(LEASE_TTL_ENV, "5")
        assert resolve_lease_ttl(2.0) == 2.0

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(LEASE_TTL_ENV, "7.5")
        assert resolve_lease_ttl() == 7.5

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(LEASE_TTL_ENV, raising=False)
        assert resolve_lease_ttl() == DEFAULT_LEASE_TTL

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(LEASE_TTL_ENV, "soon")
        with pytest.raises(ValueError, match=LEASE_TTL_ENV):
            resolve_lease_ttl()

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            resolve_lease_ttl(0.0)

    def test_executor_picks_up_env(self, monkeypatch, graph_and_targets):
        graph, _ = graph_and_targets
        monkeypatch.setenv(LEASE_TTL_ENV, "7.5")
        executor = SchedulingCampaignExecutor(graph, workers=2)
        assert executor.lease_ttl == 7.5


class TestWorkQueue:
    def test_create_open_round_trip(self, tmp_path):
        jobs = _queue_jobs(5)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=3.0)
        queue = WorkQueue.open(tmp_path / "q", worker="w0")
        assert [job.job_id for job in queue.jobs] == [job.job_id for job in jobs]
        assert queue.lease_ttl == 3.0
        assert queue.remaining() == 5 and not queue.all_done()

    def test_claims_follow_queue_order_and_write_leases(self, tmp_path):
        jobs = _queue_jobs(3)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=10.0)
        queue = WorkQueue.open(tmp_path / "q", worker="w0")
        first = queue.claim()
        assert first.job_id == jobs[0].job_id
        lease = queue.lease_of(first.job_id)
        assert lease.worker == "w0" and lease.generation == 0
        assert queue.claim().job_id == jobs[1].job_id

    def test_claim_returns_none_when_all_leased_or_done(self, tmp_path):
        jobs = _queue_jobs(2)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=10.0)
        alice = WorkQueue.open(tmp_path / "q", worker="alice")
        bob = WorkQueue.open(tmp_path / "q", worker="bob")
        alice.claim(), alice.claim()
        assert bob.claim() is None          # both live-leased by alice
        alice.complete(jobs[0].job_id)
        alice.complete(jobs[1].job_id)
        assert bob.claim() is None and bob.all_done()

    def test_complete_marks_done_and_drops_lease(self, tmp_path):
        jobs = _queue_jobs(2)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=10.0)
        queue = WorkQueue.open(tmp_path / "q", worker="w0")
        job = queue.claim()
        assert queue.complete(job.job_id) is True
        assert queue.lease_of(job.job_id) is None
        assert job.job_id in queue.done_ids()
        assert queue.remaining() == 1

    def test_second_completion_reports_duplicate(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=10.0)
        alice = WorkQueue.open(tmp_path / "q", worker="alice")
        bob = WorkQueue.open(tmp_path / "q", worker="bob")
        alice.claim()
        assert alice.complete(jobs[0].job_id) is True
        assert bob.complete(jobs[0].job_id) is False
        assert bob.duplicate_completions == 1

    def test_expired_lease_requeues_with_bumped_generation(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=5.0)
        clock = FakeClock()
        dead = WorkQueue.open(tmp_path / "q", worker="dead", clock=clock)
        thief = WorkQueue.open(tmp_path / "q", worker="thief", clock=clock)
        dead.claim()
        assert thief.claim() is None        # lease still live
        clock.advance(5.0)                  # dead never heartbeats
        stolen = thief.claim()
        assert stolen.job_id == jobs[0].job_id
        assert thief.steals == 1
        lease = thief.lease_of(stolen.job_id)
        assert lease.worker == "thief" and lease.generation == 1

    def test_heartbeat_extends_deadline_past_original_ttl(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=5.0)
        clock = FakeClock()
        worker = WorkQueue.open(tmp_path / "q", worker="w0", clock=clock)
        thief = WorkQueue.open(tmp_path / "q", worker="thief", clock=clock)
        worker.claim()
        clock.advance(4.0)
        assert worker.heartbeat(jobs[0].job_id) is True
        clock.advance(4.0)                  # 8s elapsed, renewed at 4s
        assert thief.claim() is None        # still covered by the renewal

    def test_heartbeat_after_steal_reports_lost_lease(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=5.0)
        clock = FakeClock()
        slow = WorkQueue.open(tmp_path / "q", worker="slow", clock=clock)
        thief = WorkQueue.open(tmp_path / "q", worker="thief", clock=clock)
        slow.claim()
        clock.advance(6.0)
        assert thief.claim() is not None
        assert slow.heartbeat(jobs[0].job_id) is False
        assert slow.lost_leases == 1
        # the thief's lease must not have been disturbed
        assert thief.lease_of(jobs[0].job_id).worker == "thief"

    def test_torn_lease_file_is_immediately_stealable(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=10.0)
        queue = WorkQueue.open(tmp_path / "q", worker="w0")
        torn = tmp_path / "q" / "leases" / f"{jobs[0].job_id}.json"
        torn.write_text('{"job_id": "trunc')  # killed mid-write
        job = queue.claim()
        assert job.job_id == jobs[0].job_id

    def test_release_returns_job_to_the_queue(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=10.0)
        alice = WorkQueue.open(tmp_path / "q", worker="alice")
        bob = WorkQueue.open(tmp_path / "q", worker="bob")
        alice.claim()
        assert bob.claim() is None
        alice.release(jobs[0].job_id)
        assert bob.claim().job_id == jobs[0].job_id

    def test_heartbeat_context_manager_renews_in_background(self, tmp_path):
        jobs = _queue_jobs(1)
        WorkQueue.create(tmp_path / "q", jobs, lease_ttl=0.4)
        queue = WorkQueue.open(tmp_path / "q", worker="w0")
        queue.claim()
        import time as _time

        with LeaseHeartbeat(queue, jobs[0].job_id) as beat:
            _time.sleep(1.0)                # several TTLs worth of wall time
            assert not beat.lost
        assert queue.heartbeats >= 2
        assert queue.lease_of(jobs[0].job_id).worker == "w0"


class TestSchedulerSerialParity:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_identical_result_serial_vs_scheduler(self, graph_and_targets, backend, sweep_jobs, assert_outcomes_identical):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        serial = build_campaign(graph, backend=backend, workers=1).run(jobs)
        scheduled = build_campaign(
            graph, backend=backend, workers=4, scheduler=True
        ).run(jobs)
        assert_outcomes_identical(serial, scheduled)

    def test_mixed_cost_grid_parity(self, graph_and_targets, sweep_jobs, assert_outcomes_identical):
        """λ-sweep Binarized jobs next to cheap GradMax jobs — the skew the
        scheduler exists for — still produce bit-identical outcomes."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=3)
        jobs += grid_jobs(
            "binarizedattack", [targets[:3]], budgets=[3],
            lambdas=[0.3, 0.05], candidates="target_incident", iterations=15,
        )
        serial = AttackCampaign(graph).run(jobs)
        scheduled = SchedulingCampaignExecutor(graph, workers=3).run(jobs)
        assert_outcomes_identical(serial, scheduled)

    def test_build_campaign_scheduler_switch(self, graph_and_targets):
        graph, _ = graph_and_targets
        executor = build_campaign(graph, workers=2, scheduler=True)
        assert isinstance(executor, SchedulingCampaignExecutor)
        assert isinstance(executor, ParallelCampaignExecutor)
        static = build_campaign(graph, workers=2)
        assert not isinstance(static, SchedulingCampaignExecutor)

    def test_worker_observability(self, graph_and_targets, sweep_jobs):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=6)
        executor = SchedulingCampaignExecutor(graph, workers=3)
        executor.run(jobs)
        assert sum(len(s) for s in executor.last_shards) == 6
        assert sum(s["jobs"] for s in executor.last_worker_stats) == 6
        for stats in executor.last_worker_stats:
            assert stats["claims"] >= stats["jobs"]
            assert stats["completions"] == stats["jobs"]
        assert executor.last_dead_workers == []
        assert executor.last_overhead_seconds >= 0.0

    def test_queue_dir_is_cleaned_up_after_the_run(
        self, graph_and_targets, tmp_path, sweep_jobs
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=3)
        checkpoint = tmp_path / "campaign.jsonl"
        SchedulingCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        assert not (tmp_path / "campaign.jsonl.queue").exists()
        assert not list(tmp_path.glob("*.shard*"))


class TestSchedulerCheckpointResume:
    def test_scheduler_resumes_serial_checkpoint(self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        checkpoint = tmp_path / "campaign.jsonl"
        AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs[:4])
        resumed = SchedulingCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 4
        assert_outcomes_identical(AttackCampaign(graph).run(jobs), resumed)

    def test_serial_resumes_scheduler_checkpoint(self, graph_and_targets, tmp_path, sweep_jobs):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        checkpoint = tmp_path / "campaign.jsonl"
        SchedulingCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        resumed = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
        assert resumed.resumed_jobs == len(jobs)

    def test_static_executor_resumes_scheduler_checkpoint(
        self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        checkpoint = tmp_path / "campaign.jsonl"
        SchedulingCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs[:5])
        resumed = ParallelCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint
        ).run(jobs)
        assert resumed.resumed_jobs == 5
        assert_outcomes_identical(AttackCampaign(graph).run(jobs), resumed)

    def test_fully_checkpointed_run_spawns_no_workers(
        self, graph_and_targets, tmp_path, sweep_jobs
    ):
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=3)
        checkpoint = tmp_path / "campaign.jsonl"
        SchedulingCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        ).run(jobs)
        executor = SchedulingCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        )
        replay = executor.run(jobs)
        assert replay.resumed_jobs == 3
        assert executor.last_shards == []


def _chaos_ttl():
    """Chaos-test lease TTL: the CI chaos lane's shrunk $REPRO_LEASE_TTL
    when set, capped at 1s so local runs (default 30s) stay fast."""
    return min(resolve_lease_ttl(None), 1.0)


class TestChaosKillMidLease:
    def test_chaos_sigkill_after_claim_requeues_and_matches_serial(
        self, graph_and_targets, tmp_path, monkeypatch, sweep_jobs, assert_outcomes_identical
    ):
        """The acceptance scenario: SIGKILL a worker the instant it claims
        (it dies holding an active lease, before any work lands in its
        shard).  The surviving workers must requeue the job after the TTL
        and the merged checkpoint must be bit-identical to serial."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        serial = AttackCampaign(graph).run(jobs)

        import repro.attacks.scheduler as scheduler_module

        real_main = scheduler_module._scheduler_worker_main

        def kamikaze_main(spec, queue_dir, shard_path, compute_ranks,
                          lease_ttl, worker_index):
            if worker_index == 0:
                # Fork isolation: this rebinding exists only in the child.
                real_claim = WorkQueue.claim

                def claim_then_die(self):
                    job = real_claim(self)
                    if job is not None:
                        os.kill(os.getpid(), signal.SIGKILL)
                    return job

                WorkQueue.claim = claim_then_die
            real_main(spec, queue_dir, shard_path, compute_ranks,
                      lease_ttl, worker_index)

        monkeypatch.setattr(
            scheduler_module, "_scheduler_worker_main", kamikaze_main
        )
        checkpoint = tmp_path / "campaign.jsonl"
        executor = SchedulingCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint,
            lease_ttl=_chaos_ttl(),
        )
        result = executor.run(jobs)           # must NOT raise: jobs recovered
        assert executor.last_dead_workers == ["scheduler-worker-0"]
        assert executor.last_requeues >= 1
        assert_outcomes_identical(serial, result)

    def test_chaos_sigkill_between_append_and_done_marker_dedupes(
        self, graph_and_targets, tmp_path, monkeypatch, sweep_jobs, assert_outcomes_identical
    ):
        """Kill in the gap between the two durable steps: the outcome is in
        the dead worker's shard but the done marker never lands, so the job
        is requeued and completed AGAIN by a survivor.  The merge must keep
        exactly one record and still match serial bit-for-bit."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets)
        serial = AttackCampaign(graph).run(jobs)

        import repro.attacks.scheduler as scheduler_module

        real_main = scheduler_module._scheduler_worker_main

        def kamikaze_main(spec, queue_dir, shard_path, compute_ranks,
                          lease_ttl, worker_index):
            if worker_index == 0:
                def die_instead_of_completing(self, job_id):
                    os.kill(os.getpid(), signal.SIGKILL)

                WorkQueue.complete = die_instead_of_completing
            real_main(spec, queue_dir, shard_path, compute_ranks,
                      lease_ttl, worker_index)

        monkeypatch.setattr(
            scheduler_module, "_scheduler_worker_main", kamikaze_main
        )
        checkpoint = tmp_path / "campaign.jsonl"
        executor = SchedulingCampaignExecutor(
            graph, workers=3, checkpoint_path=checkpoint,
            lease_ttl=_chaos_ttl(),
        )
        result = executor.run(jobs)
        assert executor.last_dead_workers == ["scheduler-worker-0"]
        assert_outcomes_identical(serial, result)
        # exactly one record per job survived the double completion
        records = [
            json.loads(line)
            for line in checkpoint.read_text().splitlines()[1:]
        ]
        assert len(records) == len(jobs)

    def test_chaos_kill_without_checkpoint_still_recovers(
        self, graph_and_targets, tmp_path, monkeypatch, sweep_jobs, assert_outcomes_identical
    ):
        """Crash recovery must not depend on a main checkpoint file — the
        per-worker shards + queue are enough."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=5)
        serial = AttackCampaign(graph).run(jobs)

        import repro.attacks.scheduler as scheduler_module

        real_main = scheduler_module._scheduler_worker_main

        def kamikaze_main(spec, queue_dir, shard_path, compute_ranks,
                          lease_ttl, worker_index):
            if worker_index == 1:
                real_claim = WorkQueue.claim

                def claim_then_die(self):
                    job = real_claim(self)
                    if job is not None:
                        os.kill(os.getpid(), signal.SIGKILL)
                    return job

                WorkQueue.claim = claim_then_die
            real_main(spec, queue_dir, shard_path, compute_ranks,
                      lease_ttl, worker_index)

        monkeypatch.setattr(
            scheduler_module, "_scheduler_worker_main", kamikaze_main
        )
        executor = SchedulingCampaignExecutor(
            graph, workers=2, lease_ttl=_chaos_ttl()
        )
        result = executor.run(jobs)
        assert executor.last_dead_workers == ["scheduler-worker-1"]
        assert_outcomes_identical(serial, result)


def _synthetic_outcome(job, seconds=0.0):
    """A deterministic JobOutcome derived purely from the job (plus a
    ``seconds`` that varies by writer — the one field dedupe may discard)."""
    target = int(job.targets[0])
    return JobOutcome(
        job=job,
        flips_by_budget={job.budget: ((target, target + 1),)},
        surrogate_by_budget={job.budget: float(job.budget)},
        score_before=1.0,
        score_after=0.5,
        rank_shifts={target: -1},
        seconds=seconds,
        metadata={},
    )


class TestCheckpointDedupe:
    def test_same_file_duplicate_keeps_first_record(self, tmp_path):
        """The dedupe key is the job content hash: a checkpoint holding two
        records for one job (double completion after a requeue) loads as
        exactly one outcome — the FIRST durable one."""
        job = _queue_jobs(1)[0]
        store = CheckpointStore(tmp_path / "ck.jsonl", "fp", "sparse", 64)
        store.append(_synthetic_outcome(job, seconds=1.0))
        store.append(_synthetic_outcome(job, seconds=2.0))
        loaded = store.load()
        assert len(loaded) == 1
        assert loaded[job.job_id].seconds == 1.0

    def test_double_completion_shard_pair_after_requeue_keeps_one_record(
        self, graph_and_targets, tmp_path, sweep_jobs, assert_outcomes_identical
    ):
        """A shard pair left by a slow-but-alive worker finishing a job a
        survivor already completed: both shards hold the job (different
        ``seconds``), the merged checkpoint keeps one record and the run
        matches serial."""
        graph, targets = graph_and_targets
        jobs = sweep_jobs(targets, count=4)
        serial = AttackCampaign(graph).run(jobs)
        checkpoint = tmp_path / "campaign.jsonl"

        executor = SchedulingCampaignExecutor(
            graph, workers=2, checkpoint_path=checkpoint
        )
        first = serial.outcomes[0]
        doc = first.to_dict()
        doc["seconds"] = first.seconds + 5.0
        slow_duplicate = JobOutcome.from_dict(doc)
        executor._store(tmp_path / "campaign.jsonl.shard0").append(first)
        executor._store(tmp_path / "campaign.jsonl.shard1").append(slow_duplicate)

        result = executor.run(jobs)
        assert result.resumed_jobs == 1       # the duplicated job, once
        assert_outcomes_identical(serial, result)
        records = [
            json.loads(line)
            for line in checkpoint.read_text().splitlines()[1:]
        ]
        assert len(records) == len(jobs)
        # the first durable record (shard order) won
        merged = executor._store(checkpoint).load()
        assert merged[first.job_id].seconds == first.seconds


class TestPropertyInterleavings:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_interleavings_requeue_and_complete_exactly_once(
        self, tmp_path, seed
    ):
        """Property-style: drive a real 50-job WorkQueue through thousands
        of randomly interleaved claim/heartbeat/complete/crash/clock-advance
        steps across 4 simulated workers.  Whatever the interleaving, every
        job ends done exactly once and the merged checkpoint is identical
        to a serial one (``seconds`` aside)."""
        jobs = _queue_jobs(50)
        assert len(jobs) == 50
        queue_dir = tmp_path / "queue"
        WorkQueue.create(queue_dir, jobs, lease_ttl=10.0)
        clock = FakeClock()
        n_workers = 4
        workers = [
            WorkQueue.open(queue_dir, worker=f"w{i}", clock=clock)
            for i in range(n_workers)
        ]
        shards = [
            CheckpointStore(tmp_path / f"shard{i}", "prop-fp", "sparse", 64)
            for i in range(n_workers)
        ]
        active = {}
        rng = np.random.default_rng(seed)
        for _ in range(100_000):
            if workers[0].all_done():
                break
            i = int(rng.integers(n_workers))
            queue = workers[i]
            if i not in active:
                job = queue.claim()
                if job is not None:
                    active[i] = job
            else:
                action = rng.random()
                if action < 0.30:
                    queue.heartbeat(active[i].job_id)
                elif action < 0.75:
                    job = active.pop(i)
                    # durability order: shard append, THEN done marker
                    shards[i].append(_synthetic_outcome(job, seconds=float(i)))
                    queue.complete(job.job_id)
                else:
                    active.pop(i)   # crash: never completes; lease expires
            if rng.random() < 0.5:
                clock.advance(float(rng.uniform(0.0, 8.0)))
        else:
            pytest.fail("queue did not drain within the step budget")

        assert workers[0].done_ids() == {job.job_id for job in jobs}
        assert sum(w.claims for w in workers) >= 50

        main = CheckpointStore(tmp_path / "merged", "prop-fp", "sparse", 64)
        for shard in shards:
            main.merge_from(shard)
        merged = main.load()
        assert len(merged) == 50              # exactly once, despite crashes

        reference_store = CheckpointStore(
            tmp_path / "serial", "prop-fp", "sparse", 64
        )
        for job in jobs:
            reference_store.append(_synthetic_outcome(job, seconds=99.0))
        reference = reference_store.load()
        assert set(merged) == set(reference)
        for job_id, expected in reference.items():
            got = merged[job_id]
            assert got.flips_by_budget == expected.flips_by_budget
            assert got.surrogate_by_budget == expected.surrogate_by_budget
            assert got.score_before == expected.score_before
            assert got.score_after == expected.score_after
            assert got.rank_shifts == expected.rank_shifts

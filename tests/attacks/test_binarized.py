"""Tests for BinarizedAttack (Algorithm 1)."""

import numpy as np
import pytest

from repro.attacks.binarized import BinarizedAttack
from repro.attacks.random_attack import RandomAttack
from repro.oddball.detector import OddBall


@pytest.fixture()
def attack_setup(small_ba_graph):
    report = OddBall().analyze(small_ba_graph)
    targets = report.top_k(3).tolist()
    return small_ba_graph, targets


def fast_attack(**overrides):
    defaults = dict(iterations=40, lambdas=(0.3, 0.05))
    defaults.update(overrides)
    return BinarizedAttack(**defaults)


class TestConstruction:
    def test_rejects_empty_lambdas(self):
        with pytest.raises(ValueError):
            BinarizedAttack(lambdas=())

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            BinarizedAttack(lambdas=(-0.1,))

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            BinarizedAttack(iterations=0)

    def test_rejects_bad_init(self):
        with pytest.raises(ValueError):
            BinarizedAttack(init=1.5)


class TestAttackInvariants:
    def test_budget_respected_at_every_level(self, attack_setup):
        graph, targets = attack_setup
        result = fast_attack().attack(graph, targets, budget=6)
        for b in result.budgets:
            assert len(result.flips(b)) <= b

    def test_poisoned_graph_valid(self, attack_setup):
        graph, targets = attack_setup
        result = fast_attack().attack(graph, targets, budget=6)
        poisoned = result.poisoned()
        assert np.array_equal(poisoned, poisoned.T)
        assert set(np.unique(poisoned)) <= {0.0, 1.0}
        assert np.diagonal(poisoned).sum() == 0.0

    def test_no_singletons(self, attack_setup):
        graph, targets = attack_setup
        result = fast_attack().attack(graph, targets, budget=8)
        degrees = result.poisoned().sum(axis=1)
        assert not ((degrees == 0) & (graph.degrees() > 0)).any()

    def test_surrogate_non_increasing_in_budget(self, attack_setup):
        """Best-recorded-solution selection is monotone by construction."""
        graph, targets = attack_setup
        result = fast_attack().attack(graph, targets, budget=6)
        losses = [result.surrogate_by_budget[b] for b in sorted(result.surrogate_by_budget)]
        assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))

    def test_budget_zero_is_clean_graph(self, attack_setup):
        graph, targets = attack_setup
        result = fast_attack().attack(graph, targets, budget=0)
        np.testing.assert_allclose(result.poisoned(0), graph.adjacency)


class TestAttackQuality:
    def test_decreases_target_scores(self, attack_setup):
        graph, targets = attack_setup
        result = fast_attack(iterations=80).attack(graph, targets, budget=8)
        assert result.score_decrease(targets) > 0.1

    def test_beats_random_baseline(self, attack_setup):
        graph, targets = attack_setup
        binarized = fast_attack(iterations=80).attack(graph, targets, budget=8)
        random = RandomAttack(rng=0).attack(graph, targets, budget=8)
        assert binarized.score_decrease(targets) > random.score_decrease(targets)

    def test_metadata_recorded(self, attack_setup):
        graph, targets = attack_setup
        result = fast_attack().attack(graph, targets, budget=4)
        assert result.metadata["lambdas"] == [0.3, 0.05]
        assert result.metadata["candidates_recorded"] >= 1

    def test_textbook_pgd_path_runs(self, attack_setup):
        """normalize_gradient=False exercises the plain Alg. 1 update."""
        graph, targets = attack_setup
        result = fast_attack(normalize_gradient=False, lr=1e-3).attack(
            graph, targets, budget=4
        )
        assert result.max_budget == 4

    def test_larger_lambda_means_fewer_flips(self, attack_setup):
        """LASSO sparsity: a harsh λ yields no more flips than a mild one."""
        graph, targets = attack_setup
        harsh = BinarizedAttack(iterations=60, lambdas=(0.9,)).attack(graph, targets, 10)
        mild = BinarizedAttack(iterations=60, lambdas=(0.01,)).attack(graph, targets, 10)
        assert len(harsh.flips()) <= len(mild.flips()) + 1


class TestFloorConsistency:
    """Regression: `_record`/`_select` re-scored trimmed flip sets at a
    hard-coded floor of 1.0 while forward losses used ``self.floor``,
    corrupting the per-budget argmin whenever ``floor != 1.0``."""

    @pytest.mark.parametrize("floor", [2.0, 0.5])
    def test_recorded_losses_reproducible_at_attack_floor(self, attack_setup, floor):
        from repro.oddball.surrogate import surrogate_loss_numpy

        graph, targets = attack_setup
        attack = fast_attack(floor=floor)
        result = attack.attack(graph, targets, budget=5)
        for budget, loss in result.surrogate_by_budget.items():
            reproduced = surrogate_loss_numpy(
                result.poisoned(budget), targets, floor=floor
            )
            assert loss == pytest.approx(reproduced, rel=1e-12), (
                f"budget {budget}: recorded loss mixes floors"
            )

    def test_base_loss_seeded_at_attack_floor(self, attack_setup):
        from repro.oddball.surrogate import surrogate_loss_numpy

        graph, targets = attack_setup
        result = fast_attack(floor=2.0, iterations=5).attack(graph, targets, budget=3)
        assert result.surrogate_by_budget[0] == surrogate_loss_numpy(
            graph.adjacency, targets, floor=2.0
        )

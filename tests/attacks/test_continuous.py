"""Tests for ContinuousA."""

import numpy as np
import pytest

from repro.attacks.continuous import ContinuousA
from repro.oddball.detector import OddBall


@pytest.fixture()
def attack_setup(small_ba_graph):
    report = OddBall().analyze(small_ba_graph)
    targets = report.top_k(3).tolist()
    return small_ba_graph, targets


class TestContinuousA:
    def test_budget_respected(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        assert len(result.flips()) <= 5

    def test_poisoned_graph_valid(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        poisoned = result.poisoned()
        assert np.array_equal(poisoned, poisoned.T)
        assert set(np.unique(poisoned)) <= {0.0, 1.0}
        assert np.diagonal(poisoned).sum() == 0.0

    def test_relaxation_moves_mass(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        assert result.metadata["fractional_mass"] > 0.0
        assert result.metadata["iterations"] >= 1

    def test_converges_early_with_loose_tol(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=500, tol=1e9).attack(graph, targets, budget=2)
        assert result.metadata["iterations"] <= 3

    def test_flips_ranked_by_relaxed_difference(self, attack_setup):
        """Budget-b flips are a prefix of the full ranked flip list."""
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        full = result.flips(5)
        for b in range(len(full)):
            assert result.flips(b) == full[:b]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ContinuousA(max_iter=0)

    def test_no_singletons(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=10)
        degrees = result.poisoned().sum(axis=1)
        assert not ((degrees == 0) & (graph.degrees() > 0)).any()


class TestCandidateRestriction:
    """Regression: with a candidate subset, the relaxed matrix must keep
    non-candidate edges frozen at their clean values (an early version
    zero-filled them, optimising a mutilated graph)."""

    def test_first_iteration_sees_the_whole_graph(self, small_ba_graph):
        from repro.attacks.candidates import CandidateSet
        from repro.oddball.surrogate import surrogate_loss_numpy

        adjacency = small_ba_graph.adjacency
        targets = [0, 7]
        tiny = CandidateSet.from_pairs(adjacency.shape[0], [(20, 30), (10, 40)])
        attack = ContinuousA(max_iter=1)
        result = attack.attack(small_ba_graph, targets, budget=1, candidates=tiny)
        # the single forward pass runs before any update, so it evaluates the
        # CLEAN graph; if non-candidate edges were dropped this loss would
        # differ wildly
        assert result.metadata["final_relaxed_loss"] == surrogate_loss_numpy(
            adjacency, targets, floor=attack.floor
        )

    def test_flips_stay_inside_candidates(self, small_ba_graph):
        from repro.attacks.candidates import CandidateSet

        targets = [0, 7]
        candidate_set = CandidateSet.build("target_incident", small_ba_graph, targets)
        result = ContinuousA(max_iter=30).attack(
            small_ba_graph, targets, budget=4, candidates=candidate_set
        )
        for pair in result.flips():
            assert pair in candidate_set

    def test_bookkeeping_uses_attack_floor(self, small_ba_graph):
        from repro.oddball.surrogate import surrogate_loss_numpy

        targets = [0, 7]
        attack = ContinuousA(max_iter=10)
        result = attack.attack(small_ba_graph, targets, budget=3)
        for budget, loss in result.surrogate_by_budget.items():
            assert loss == surrogate_loss_numpy(
                result.poisoned(budget), targets, floor=attack.floor
            )


class TestConvergenceLoop:
    """Regression: the convergence check compared against the initial ∞
    sentinel (``inf <= inf`` is true), so the optimisation silently stopped
    after a single PGD iteration and reported ``final_relaxed_loss = inf``."""

    def test_runs_more_than_one_iteration(self, small_ba_graph):
        targets = [0, 7]
        result = ContinuousA(max_iter=50).attack(small_ba_graph, targets, budget=3)
        assert result.metadata["iterations"] > 1
        assert np.isfinite(result.metadata["final_relaxed_loss"])

    def test_tolerance_still_stops_early(self, small_ba_graph):
        targets = [0, 7]
        loose = ContinuousA(max_iter=200, tol=1e30).attack(
            small_ba_graph, targets, budget=3
        )
        assert loose.metadata["iterations"] == 2  # one real step + the check

"""Tests for ContinuousA."""

import numpy as np
import pytest

from repro.attacks.continuous import ContinuousA
from repro.oddball.detector import OddBall


@pytest.fixture()
def attack_setup(small_ba_graph):
    report = OddBall().analyze(small_ba_graph)
    targets = report.top_k(3).tolist()
    return small_ba_graph, targets


class TestContinuousA:
    def test_budget_respected(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        assert len(result.flips()) <= 5

    def test_poisoned_graph_valid(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        poisoned = result.poisoned()
        assert np.array_equal(poisoned, poisoned.T)
        assert set(np.unique(poisoned)) <= {0.0, 1.0}
        assert np.diagonal(poisoned).sum() == 0.0

    def test_relaxation_moves_mass(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        assert result.metadata["fractional_mass"] > 0.0
        assert result.metadata["iterations"] >= 1

    def test_converges_early_with_loose_tol(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=500, tol=1e9).attack(graph, targets, budget=2)
        assert result.metadata["iterations"] <= 3

    def test_flips_ranked_by_relaxed_difference(self, attack_setup):
        """Budget-b flips are a prefix of the full ranked flip list."""
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=5)
        full = result.flips(5)
        for b in range(len(full)):
            assert result.flips(b) == full[:b]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ContinuousA(max_iter=0)

    def test_no_singletons(self, attack_setup):
        graph, targets = attack_setup
        result = ContinuousA(max_iter=50).attack(graph, targets, budget=10)
        degrees = result.poisoned().sum(axis=1)
        assert not ((degrees == 0) & (graph.degrees() > 0)).any()

"""Candidate-set equivalence: the ``full`` strategy reproduces the legacy
full-pair attacks bit-for-bit, and restricted strategies honour their
restriction.  This is the acceptance contract of the candidate engine."""

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import (
    BinarizedAttack,
    CandidateSet,
    ContinuousA,
    GradMaxSearch,
    OddBallHeuristic,
    RandomAttack,
)
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.oddball.detector import OddBall


def _graphs():
    return [
        barabasi_albert(60, 3, rng=11),
        erdos_renyi(50, 0.15, rng=7),
        barabasi_albert(80, 2, rng=3),
    ]


def _targets(graph, k=3):
    return OddBall().analyze(graph).top_k(k).tolist()


@pytest.fixture(params=range(3), ids=["ba60", "er50", "ba80"])
def graph_and_targets(request):
    graph = _graphs()[request.param]
    return graph, _targets(graph)


class TestGradMaxEquivalence:
    def test_full_candidates_match_dense_engine_bitwise(self, graph_and_targets):
        graph, targets = graph_and_targets
        dense = GradMaxSearch().attack(graph, targets, budget=6)
        engine = GradMaxSearch().attack(graph, targets, budget=6, candidates="full")
        assert dense.flips_by_budget == engine.flips_by_budget
        # losses are computed through different code paths (autograd vs the
        # incremental feature mirror) yet must agree bit-for-bit
        assert dense.surrogate_by_budget == engine.surrogate_by_budget

    def test_target_incident_flips_touch_targets(self, graph_and_targets):
        graph, targets = graph_and_targets
        result = GradMaxSearch().attack(
            graph, targets, budget=6, candidates="target_incident"
        )
        assert result.flips()
        assert all(u in targets or v in targets for u, v in result.flips())

    def test_two_hop_flips_stay_in_ball(self, graph_and_targets):
        graph, targets = graph_and_targets
        candidate_set = CandidateSet.build("two_hop", graph, targets)
        result = GradMaxSearch().attack(
            graph, targets, budget=6, candidates=candidate_set
        )
        for pair in result.flips():
            assert pair in candidate_set

    def test_sparse_input_matches_dense_input(self, graph_and_targets):
        graph, targets = graph_and_targets
        from_dense = GradMaxSearch().attack(
            graph, targets, budget=5, candidates="target_incident"
        )
        from_sparse = GradMaxSearch().attack(
            sparse.csr_matrix(graph.adjacency),
            targets,
            budget=5,
            candidates="target_incident",
        )
        assert from_dense.flips_by_budget == from_sparse.flips_by_budget
        assert sparse.issparse(from_sparse.poisoned())
        np.testing.assert_array_equal(
            from_sparse.poisoned().toarray(), from_dense.poisoned()
        )

    def test_weighted_targets_equivalence(self, graph_and_targets):
        graph, targets = graph_and_targets
        weights = [2.0, 1.0, 0.5]
        dense = GradMaxSearch().attack(
            graph, targets, budget=5, target_weights=weights
        )
        engine = GradMaxSearch().attack(
            graph, targets, budget=5, target_weights=weights, candidates="full"
        )
        assert dense.flips_by_budget == engine.flips_by_budget

    def test_restriction_still_attacks(self, graph_and_targets):
        graph, targets = graph_and_targets
        result = GradMaxSearch().attack(
            graph, targets, budget=6, candidates="target_incident"
        )
        assert result.score_decrease(targets) > 0.0


class TestBinarizedEquivalence:
    def test_full_candidates_match_legacy_bitwise(self, graph_and_targets):
        graph, targets = graph_and_targets
        legacy = BinarizedAttack(iterations=25).attack(graph, targets, budget=4)
        full = BinarizedAttack(iterations=25).attack(
            graph, targets, budget=4, candidates="full"
        )
        assert legacy.flips_by_budget == full.flips_by_budget
        assert legacy.surrogate_by_budget == full.surrogate_by_budget

    def test_target_incident_shrinks_decision_variables(self, graph_and_targets):
        graph, targets = graph_and_targets
        n = graph.number_of_nodes
        result = BinarizedAttack(iterations=25).attack(
            graph, targets, budget=4, candidates="target_incident"
        )
        assert result.metadata["decision_variables"] < n * (n - 1) // 2
        assert all(u in targets or v in targets for u, v in result.flips())


class TestBaselineEquivalence:
    def test_random_full_matches_legacy(self, graph_and_targets):
        graph, targets = graph_and_targets
        legacy = RandomAttack(rng=5).attack(graph, targets, budget=5)
        full = RandomAttack(rng=5).attack(graph, targets, budget=5, candidates="full")
        assert legacy.flips_by_budget == full.flips_by_budget

    def test_random_target_biased_is_target_incident(self, graph_and_targets):
        graph, targets = graph_and_targets
        biased = RandomAttack(rng=5, target_biased=True).attack(graph, targets, budget=5)
        incident = RandomAttack(rng=5).attack(
            graph, targets, budget=5, candidates="target_incident"
        )
        assert biased.flips_by_budget == incident.flips_by_budget

    def test_continuous_full_matches_legacy(self, graph_and_targets):
        graph, targets = graph_and_targets
        legacy = ContinuousA(max_iter=30).attack(graph, targets, budget=4)
        full = ContinuousA(max_iter=30).attack(
            graph, targets, budget=4, candidates="full"
        )
        assert legacy.flips_by_budget == full.flips_by_budget

    def test_heuristic_full_matches_legacy(self, graph_and_targets):
        graph, targets = graph_and_targets
        legacy = OddBallHeuristic(rng=2).attack(graph, targets, budget=4)
        full = OddBallHeuristic(rng=2).attack(
            graph, targets, budget=4, candidates="full"
        )
        assert legacy.flips_by_budget == full.flips_by_budget

    def test_heuristic_respects_candidate_restriction(self, graph_and_targets):
        graph, targets = graph_and_targets
        candidate_set = CandidateSet.build("two_hop", graph, targets)
        result = OddBallHeuristic(rng=2).attack(
            graph, targets, budget=4, candidates=candidate_set
        )
        for pair in result.flips():
            assert pair in candidate_set


class TestCandidateValidation:
    def test_mismatched_candidate_set_rejected(self, graph_and_targets):
        graph, targets = graph_and_targets
        wrong = CandidateSet.full(graph.number_of_nodes + 1)
        with pytest.raises(ValueError, match="addresses"):
            GradMaxSearch().attack(graph, targets, budget=2, candidates=wrong)

    def test_bogus_candidate_type_rejected(self, graph_and_targets):
        graph, targets = graph_and_targets
        with pytest.raises(TypeError, match="candidates"):
            GradMaxSearch().attack(graph, targets, budget=2, candidates=42)

"""Tests for the attack framework (AttackResult, apply_flips, validation)."""

import numpy as np
import pytest
from scipy import sparse

from repro.attacks.base import AttackResult, apply_flips, validate_targets
from repro.graph import Graph, SparseGraphView


class TestValidateTargets:
    def test_passes_valid(self):
        assert validate_targets([2, 0, 1], 5) == [2, 0, 1]

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            validate_targets([], 5)

    def test_duplicates(self):
        with pytest.raises(ValueError, match="unique"):
            validate_targets([1, 1], 5)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="range"):
            validate_targets([5], 5)
        with pytest.raises(ValueError, match="range"):
            validate_targets([-1], 5)


class TestApplyFlips:
    def test_add_and_delete(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        poisoned = apply_flips(adjacency, [(0, 1), (1, 2)])
        assert poisoned[0, 1] == 0.0 and poisoned[1, 0] == 0.0
        assert poisoned[1, 2] == 1.0 and poisoned[2, 1] == 1.0

    def test_original_untouched(self):
        adjacency = np.zeros((2, 2))
        apply_flips(adjacency, [(0, 1)])
        assert adjacency[0, 1] == 0.0

    def test_double_flip_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            apply_flips(np.zeros((3, 3)), [(0, 1), (1, 0)])

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            apply_flips(np.zeros((3, 3)), [(1, 1)])


class TestAttackResult:
    def _result(self, graph):
        return AttackResult(
            method="test",
            original=graph.adjacency,
            flips_by_budget={0: [], 1: [(0, 1)], 2: [(0, 1), (2, 3)]},
        )

    def test_budgets_sorted(self, small_er_graph):
        result = self._result(small_er_graph)
        assert result.budgets == [0, 1, 2]
        assert result.max_budget == 2

    def test_flips_default_max(self, small_er_graph):
        result = self._result(small_er_graph)
        assert result.flips() == [(0, 1), (2, 3)]
        assert result.flips(1) == [(0, 1)]

    def test_unknown_budget(self, small_er_graph):
        with pytest.raises(KeyError):
            self._result(small_er_graph).flips(7)

    def test_poisoned_graph_valid(self, small_er_graph):
        poisoned = self._result(small_er_graph).poisoned_graph()
        adjacency = poisoned.adjacency_view
        assert np.array_equal(adjacency, adjacency.T)

    def test_overbudget_flips_rejected(self, small_er_graph):
        with pytest.raises(ValueError, match="budget"):
            AttackResult(
                method="bad",
                original=small_er_graph.adjacency,
                flips_by_budget={1: [(0, 1), (1, 2)]},
            )

    def test_edges_changed_fraction(self, small_er_graph):
        result = self._result(small_er_graph)
        expected = 2 / small_er_graph.number_of_edges
        assert result.edges_changed_fraction() == pytest.approx(expected)

    def test_score_decrease_zero_for_empty_flips(self, small_er_graph):
        result = self._result(small_er_graph)
        assert result.score_decrease([0, 1], budget=0) == pytest.approx(0.0)

    def test_invalid_original_rejected(self):
        with pytest.raises(ValueError):
            AttackResult(method="bad", original=np.ones((3, 3)), flips_by_budget={0: []})


class TestPoisonedGraphRepresentation:
    """poisoned_graph() must hand back the same representation it was given:
    dense originals yield Graph, sparse originals yield SparseGraphView."""

    FLIPS = {0: [], 1: [(0, 1)], 2: [(0, 1), (2, 3)]}

    def _dense_result(self, graph):
        return AttackResult(
            method="test", original=graph.adjacency, flips_by_budget=self.FLIPS
        )

    def _sparse_result(self, graph):
        csr = sparse.csr_matrix(graph.adjacency)
        return AttackResult(method="test", original=csr, flips_by_budget=self.FLIPS)

    def test_dense_original_returns_graph(self, small_er_graph):
        poisoned = self._dense_result(small_er_graph).poisoned_graph()
        assert isinstance(poisoned, Graph)

    def test_sparse_original_returns_sparse_view(self, small_er_graph):
        poisoned = self._sparse_result(small_er_graph).poisoned_graph()
        assert isinstance(poisoned, SparseGraphView)
        assert sparse.issparse(poisoned.adjacency_csr())

    def test_sparse_and_dense_views_agree(self, small_er_graph):
        dense = self._dense_result(small_er_graph).poisoned_graph()
        view = self._sparse_result(small_er_graph).poisoned_graph()
        assert view.number_of_nodes == dense.number_of_nodes
        assert view.number_of_edges == dense.number_of_edges
        assert view.edge_set() == dense.edge_set()
        assert np.array_equal(view.degrees(), dense.degrees())

    def test_sparse_view_per_budget(self, small_er_graph):
        result = self._sparse_result(small_er_graph)
        baseline = result.poisoned_graph(0)
        assert isinstance(baseline, SparseGraphView)
        assert baseline.edge_set() == Graph(small_er_graph.adjacency).edge_set()
        assert result.poisoned_graph(1).has_edge(0, 1) != baseline.has_edge(0, 1)

    def test_to_graph_escape_hatch_matches(self, small_er_graph):
        view = self._sparse_result(small_er_graph).poisoned_graph()
        dense = self._dense_result(small_er_graph).poisoned_graph()
        assert np.array_equal(view.to_graph().adjacency, dense.adjacency)

"""Bench: regenerate Table IV (ReFeX transfer attack)."""

from benchmarks.conftest import run_once
from repro.experiments import table4_refex


def test_bench_table4(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, table4_refex.run, scale=bench_scale, seed=bench_seed)
    print()
    print(table4_refex.format_results(payload))
    for dataset, data in payload["datasets"].items():
        rows = data["rows"]
        assert rows[0]["budget"] == 0 and rows[0]["delta_b_pct"] == 0.0
        assert max(r["delta_b_pct"] for r in rows) > 0.0, dataset
        assert min(r["auc"] for r in rows) > 0.5

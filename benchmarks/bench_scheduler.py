"""SchedulingCampaignExecutor vs static round-robin shards on skewed grids.

The static executor's critical path is the unluckiest shard: a budgets ×
targets sweep is striped budget-major onto workers, so with budgets
``[2, 4, 8, 16]`` at 4 workers one worker receives *every* budget-16 job —
more than half the grid's total work — while the budget-2 worker idles.
The scheduler replaces the stripes with queue draining: workers claim jobs
one at a time, so the load divides by total cost rather than job count.

Both executors are asserted **bit-identical** to the serial campaign on
every run (flips, losses, rank shifts); this benchmark measures only where
the wall-clock goes.  As in ``bench_parallel_campaign.py`` two numbers are
reported per executor:

* ``seconds_wall`` — honest headline when the machine has >= W cores;
* ``seconds_critical_path`` — measured parent overhead plus the largest
  per-worker **CPU** time (from the ``.stats`` sidecars): the wall time of
  a run whose workers never contend for cores, and the scaling signal on
  core-starved machines (``speedup_mode`` labels which regime applies).

The committed artefact's headline is ``critical_path_ratio`` =
scheduler / static critical path — < 1 means the queue beat the stripes.

Run the study directly::

    PYTHONPATH=src python benchmarks/bench_scheduler.py            # full
    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke    # CI

Every run emits ``benchmarks/results/BENCH_scheduler.json`` (smoke runs a
``_smoke`` sibling); the full-run artefact is committed.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.attacks import (
    AttackCampaign,
    AttackJob,
    ParallelCampaignExecutor,
    SchedulingCampaignExecutor,
    grid_jobs,
)
from repro.graph.sparse import anomaly_scores_sparse

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_scheduler.json"

_CANDIDATES = "target_incident"
#: Budget-major striping: at 4 workers, round-robin hands worker w every
#: budget ``_BUDGETS[w]`` job — the systematic skew the scheduler removes.
_BUDGETS = (2, 4, 8, 16)
_LAMBDAS = (0.3, 0.1, 0.02)


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


def _campaign_instance(n: int, n_targets: int, seed: int = 0):
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    scores = anomaly_scores_sparse(graph)
    targets = np.argsort(-scores, kind="stable")[:n_targets].tolist()
    return graph, targets


def _skewed_jobs(targets, budgets=_BUDGETS, lambda_sweep=False, iterations=40):
    """The cost-skewed grid, in experiment order.

    Without ``lambda_sweep``: a plain budgets × targets GradMax sweep.
    ``grid_jobs`` emits budgets budget-major per target, so round-robin
    sharding stripes budget ``budgets[w]`` onto worker ``w`` — one worker
    owns every budget-16 job.

    With ``lambda_sweep``: each target contributes its GradMax budget runs
    plus ONE full λ-sweep BinarizedAttack job (the paper's λ grid inside a
    single job), in the natural per-target order a sweep driver emits.
    The per-target period equals the worker count, so static round-robin
    hands *every* λ-sweep job — an order of magnitude above a GradMax job
    — to the same worker.
    """
    if not lambda_sweep:
        return grid_jobs(
            "gradmaxsearch", [[t] for t in targets], budgets=list(budgets),
            candidates=_CANDIDATES,
        )
    jobs = []
    for t in targets:
        jobs += grid_jobs(
            "gradmaxsearch", [[t]], budgets=[2, 4, 8],
            candidates=_CANDIDATES,
        )
        jobs.append(
            AttackJob.make(
                "binarizedattack", [t], 8, candidates=_CANDIDATES,
                lambdas=tuple(_LAMBDAS), iterations=iterations,
            )
        )
    return jobs


def _assert_identical(serial, other) -> None:
    """Scheduling is a wall-clock lever only — everything else matches."""
    assert len(serial) == len(other)
    for a, b in zip(serial, other):
        assert a.job_id == b.job_id
        assert a.flips_by_budget == b.flips_by_budget, f"flip mismatch: {a.job_id}"
        assert a.surrogate_by_budget == b.surrogate_by_budget
        assert a.rank_shifts == b.rank_shifts
        assert a.score_before == b.score_before
        assert a.score_after == b.score_after


def _measure(executor, jobs, serial, cpu_count) -> dict:
    start = time.perf_counter()
    result = executor.run(jobs)
    seconds_wall = time.perf_counter() - start
    _assert_identical(serial, result)
    worker_cpu = [s["cpu_seconds"] for s in executor.last_worker_stats]
    critical_path = executor.last_overhead_seconds + max(worker_cpu)
    mode = "measured" if cpu_count >= executor.workers else "modeled-critical-path"
    return {
        "workers": executor.workers,
        "seconds_wall": round(seconds_wall, 4),
        "seconds_critical_path": round(critical_path, 4),
        "parent_overhead_seconds": round(executor.last_overhead_seconds, 4),
        "worker_cpu_seconds": [round(s, 4) for s in worker_cpu],
        "speedup_mode": mode,
        "shard_sizes": [len(s) for s in executor.last_shards],
        "requeues": int(getattr(executor, "last_requeues", 0)),
        "dead_workers": list(getattr(executor, "last_dead_workers", [])),
        "flip_sets_identical": True,
    }


def _run_case(
    n: int, n_targets: int, workers: int,
    lambda_sweep: bool = False, iterations: int = 40, seed: int = 0,
) -> dict:
    graph, targets = _campaign_instance(n, n_targets, seed)
    jobs = _skewed_jobs(
        targets, lambda_sweep=lambda_sweep, iterations=iterations
    )
    cpu_count = os.cpu_count() or 1

    start = time.perf_counter()
    serial = AttackCampaign(graph, backend="sparse").run(jobs)
    seconds_serial = time.perf_counter() - start

    static = _measure(
        ParallelCampaignExecutor(graph, workers=workers, backend="sparse"),
        jobs, serial, cpu_count,
    )
    scheduled = _measure(
        SchedulingCampaignExecutor(graph, workers=workers, backend="sparse"),
        jobs, serial, cpu_count,
    )
    ratio = (
        scheduled["seconds_critical_path"] / static["seconds_critical_path"]
    )
    return {
        "n": n,
        "edges": int(graph.nnz // 2),
        "jobs": len(jobs),
        "budgets": [2, 4, 8] if lambda_sweep else list(_BUDGETS),
        "lambda_jobs": sum(1 for j in jobs if j.attack == "binarizedattack"),
        "workers": workers,
        "cpu_count": cpu_count,
        "seconds_serial": round(seconds_serial, 4),
        "static": static,
        "scheduler": scheduled,
        "critical_path_ratio": round(ratio, 3),
    }


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #


def test_bench_scheduler_matches_serial(benchmark):
    row = benchmark.pedantic(
        lambda: _run_case(n=400, n_targets=8, workers=4),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert row["jobs"] == 32
    assert row["static"]["flip_sets_identical"]
    assert row["scheduler"]["flip_sets_identical"]
    assert sum(row["scheduler"]["shard_sizes"]) == row["jobs"]
    assert row["scheduler"]["dead_workers"] == []


def test_bench_scheduler_balances_the_budget_stripes():
    """Static round-robin pins every budget-16 job on one worker; the
    queue must spread the work so no worker's CPU share reaches the
    static stripe maximum."""
    graph, targets = _campaign_instance(n=400, n_targets=8)
    jobs = _skewed_jobs(targets)
    serial = AttackCampaign(graph, backend="sparse").run(jobs)
    cpus = os.cpu_count() or 1
    static = _measure(
        ParallelCampaignExecutor(graph, workers=4, backend="sparse"),
        jobs, serial, cpus,
    )
    scheduled = _measure(
        SchedulingCampaignExecutor(graph, workers=4, backend="sparse"),
        jobs, serial, cpus,
    )
    # every static shard holds exactly one budget class (the stripes)
    assert static["shard_sizes"] == [8, 8, 8, 8]
    share = max(scheduled["worker_cpu_seconds"]) / sum(
        scheduled["worker_cpu_seconds"]
    )
    stripe_share = max(static["worker_cpu_seconds"]) / sum(
        static["worker_cpu_seconds"]
    )
    assert share < stripe_share


# --------------------------------------------------------------------- #
# The committed artefact
# --------------------------------------------------------------------- #


def run_scheduler_study(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Static shards vs queue draining on a cost-skewed grid; emit JSON."""
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_scheduler_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    if smoke:
        cases = [dict(n=400, n_targets=8, workers=4)]
    else:
        cases = [
            dict(n=2000, n_targets=12, workers=4),
            dict(n=2000, n_targets=12, workers=4,
                 lambda_sweep=True, iterations=40),
        ]

    print("SchedulingCampaignExecutor (queue draining) vs static round-robin")
    print(
        f"(gradmaxsearch budgets={list(_BUDGETS)} per target, "
        f"candidates={_CANDIDATES}, m ≈ 4n; cpus={os.cpu_count()})"
    )
    print()
    rows = []
    for case in cases:
        row = _run_case(**case)
        rows.append(row)
        print(
            f"n={row['n']}  jobs={row['jobs']} "
            f"({row['lambda_jobs']} λ-sweep)  "
            f"serial={row['seconds_serial']:.3f}s  workers={row['workers']}"
        )
        for kind in ("static", "scheduler"):
            sweep = row[kind]
            print(
                f"  {kind:>9}: critical={sweep['seconds_critical_path']:>8.3f}s "
                f"wall={sweep['seconds_wall']:>8.3f}s "
                f"cpu={sweep['worker_cpu_seconds']} "
                f"shards={sweep['shard_sizes']}"
            )
        print(f"  critical-path ratio (scheduler/static): "
              f"{row['critical_path_ratio']:.3f}")
        print()

    payload = {
        "benchmark": "scheduler_vs_static_shards",
        "attack": "gradmaxsearch + binarizedattack λ-sweep",
        "budgets": list(_BUDGETS),
        "lambdas": list(_LAMBDAS),
        "candidates": _CANDIDATES,
        "edges_per_node": 4,
        "smoke": smoke,
        "env": _benchenv.bench_env(),
        "results": rows,
        "notes": (
            "Flip sets, losses and rank shifts are asserted bit-identical "
            "between the serial campaign, the static executor and the "
            "scheduler on every run. The grid is deliberately cost-skewed: "
            "grid_jobs emits budgets budget-major per target, so static "
            "round-robin at 4 workers stripes every budget-16 job onto one "
            "worker while the scheduler's workers claim jobs one at a time "
            "from the shared queue. The λ-sweep case orders jobs per target "
            "(three GradMax budgets + one full-λ-grid BinarizedAttack job), "
            "so the stripe period equals the worker count and one worker "
            "receives every λ-sweep job. seconds_critical_path = measured parent "
            "overhead + max per-worker CPU seconds (the wall time with "
            "uncontended cores); critical_path_ratio = scheduler / static — "
            "the headline, valid in either speedup_mode. requeues counts "
            "lease steals (0 on a crash-free run)."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    return payload


if __name__ == "__main__":
    run_scheduler_study(smoke="--smoke" in sys.argv[1:])

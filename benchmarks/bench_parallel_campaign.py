"""ParallelCampaignExecutor scaling: serial campaign vs sharded workers.

The executor's claim mirrors the campaign's: flip sets (and every recorded
evaluation artefact) are **bit-identical** to the serial
:class:`~repro.attacks.campaign.AttackCampaign` — asserted here on every
run — and the only thing that changes is wall-clock.  With W workers the
critical path drops from ``E + J·t`` to ``E + ceil(J/W)·t`` (E = one
engine build + clean-score pass per process, t = per-job cost), so a
Fig. 4-scale grid (hundreds of jobs at n = 10,000) approaches linear
scaling while ``J·t`` dominates.

Two numbers are reported per worker count:

* ``seconds_wall`` — the measured end-to-end wall time of the executor,
  fork + shard drain + merge included.  This is the honest headline **when
  the machine has at least W cores**.
* ``seconds_critical_path`` — parent overhead (checkpoint load, sharding,
  spec capture, shard merge — measured) plus the largest per-worker **CPU
  time** (from the executor's ``.stats`` sidecars): the wall time a
  machine with W idle cores would see.  CPU time is immune to
  time-sharing, so on core-starved machines (e.g. a 1-CPU container,
  where W processes contend for one core and wall time cannot drop) this
  is the meaningful scaling signal, and it is what the committed
  artefact's ``speedup`` field falls back to — always labelled by
  ``speedup_mode``.

The artefact records ``cpu_count`` so a reader can tell which regime a
given run was in; the scheduled CI benchmark job regenerates it on
multi-core runners where ``measured`` mode applies.

Run the scaling study directly::

    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py            # full
    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py --smoke    # CI

Every run emits ``benchmarks/results/BENCH_parallel_campaign.json`` (smoke
runs a ``_smoke`` sibling); the full-run artefact is committed.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.attacks import AttackCampaign, ParallelCampaignExecutor, grid_jobs
from repro.oddball.surrogate import EngineSpec
from repro.graph.sparse import anomaly_scores_sparse

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_parallel_campaign.json"

_BUDGET = 5
_CANDIDATES = "target_incident"


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


def _campaign_instance(n: int, n_targets: int, seed: int = 0):
    """A mid-density sparse graph plus its top-scoring OddBall targets."""
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    scores = anomaly_scores_sparse(graph)
    targets = np.argsort(-scores, kind="stable")[:n_targets].tolist()
    return graph, targets


def _assert_identical(serial, parallel) -> None:
    """The executor is a wall-clock lever only — everything else matches."""
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.job_id == b.job_id
        assert a.flips_by_budget == b.flips_by_budget, f"flip mismatch: {a.job_id}"
        assert a.surrogate_by_budget == b.surrogate_by_budget
        assert a.rank_shifts == b.rank_shifts
        assert a.score_before == b.score_before
        assert a.score_after == b.score_after


def _engine_setup_seconds(graph, targets) -> float:
    """One worker's fixed cost: spec → engine build (what E in E + J·t is).

    Built with an empty candidate set, exactly as the executor's workers
    do — ``candidates=None`` would materialise all n(n−1)/2 pairs.
    """
    spec = EngineSpec.from_graph(graph, backend="sparse")
    empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
    start = time.perf_counter()
    spec.build(targets[:1], candidates=empty)
    return time.perf_counter() - start


def _run_case(n: int, n_targets: int, worker_counts, seed: int = 0) -> dict:
    graph, targets = _campaign_instance(n, n_targets, seed)
    jobs = grid_jobs(
        "gradmaxsearch",
        [[t] for t in targets],
        budgets=[_BUDGET],
        candidates=_CANDIDATES,
    )

    start = time.perf_counter()
    serial = AttackCampaign(graph, backend="sparse").run(jobs)
    seconds_serial = time.perf_counter() - start

    setup = _engine_setup_seconds(graph, targets)
    cpu_count = os.cpu_count() or 1

    sweeps = []
    for workers in worker_counts:
        executor = ParallelCampaignExecutor(
            graph, workers=workers, backend="sparse"
        )
        start = time.perf_counter()
        parallel = executor.run(jobs)
        seconds_wall = time.perf_counter() - start
        _assert_identical(serial, parallel)

        worker_cpu = [s["cpu_seconds"] for s in executor.last_worker_stats]
        critical_path = executor.last_overhead_seconds + max(worker_cpu)
        mode = "measured" if cpu_count >= workers else "modeled-critical-path"
        speedup = seconds_serial / (
            seconds_wall if mode == "measured" else critical_path
        )
        sweeps.append(
            {
                "workers": workers,
                "seconds_wall": round(seconds_wall, 4),
                "seconds_critical_path": round(critical_path, 4),
                "parent_overhead_seconds": round(
                    executor.last_overhead_seconds, 4
                ),
                "worker_cpu_seconds": [round(s, 4) for s in worker_cpu],
                "speedup": round(speedup, 2),
                "speedup_mode": mode,
                "shard_sizes": [len(s) for s in executor.last_shards],
                "flip_sets_identical": True,
            }
        )

    return {
        "n": n,
        "edges": int(graph.nnz // 2),
        "jobs": len(jobs),
        "budget": _BUDGET,
        "candidates": _CANDIDATES,
        "cpu_count": cpu_count,
        "engine_setup_seconds": round(setup, 4),
        "seconds_serial": round(seconds_serial, 4),
        "workers": sweeps,
    }


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #


def test_bench_parallel_matches_serial(benchmark):
    row = benchmark.pedantic(
        lambda: _run_case(n=400, n_targets=8, worker_counts=(2,)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert row["jobs"] == 8
    assert all(sweep["flip_sets_identical"] for sweep in row["workers"])


def test_bench_parallel_checkpoint_interop(tmp_path):
    graph, targets = _campaign_instance(n=300, n_targets=6)
    jobs = grid_jobs(
        "gradmaxsearch", [[t] for t in targets], budgets=[_BUDGET],
        candidates=_CANDIDATES,
    )
    checkpoint = tmp_path / "campaign.jsonl"
    # serial writes the first half; a 3-worker executor resumes + finishes
    AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs[:3])
    resumed = ParallelCampaignExecutor(
        graph, workers=3, checkpoint_path=checkpoint
    ).run(jobs)
    fresh = AttackCampaign(graph).run(jobs)
    assert resumed.resumed_jobs == 3
    _assert_identical(fresh, resumed)


# --------------------------------------------------------------------- #
# Scaling study (the committed artefact)
# --------------------------------------------------------------------- #


def run_parallel_scaling(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Time serial vs 2/4/8 workers; print a table, emit JSON.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_parallel_campaign_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    if smoke:
        cases = [(500, 16, (2,))]
    else:
        cases = [(10000, 120, (2, 4, 8))]

    print("ParallelCampaignExecutor: sharded workers vs serial AttackCampaign")
    print(
        f"(gradmaxsearch, budget={_BUDGET}, candidates={_CANDIDATES}, m ≈ 4n; "
        f"cpus={os.cpu_count()})"
    )
    print()
    rows = []
    for n, n_targets, worker_counts in cases:
        row = _run_case(n=n, n_targets=n_targets, worker_counts=worker_counts)
        rows.append(row)
        print(f"n={n}  jobs={row['jobs']}  serial={row['seconds_serial']:.3f}s")
        header = f"{'workers':>8} {'wall':>8} {'critical':>9} {'speedup':>8}  mode"
        print(header)
        print("-" * (len(header) + 16))
        for sweep in row["workers"]:
            print(
                f"{sweep['workers']:>8} {sweep['seconds_wall']:>8.3f} "
                f"{sweep['seconds_critical_path']:>9.3f} "
                f"{sweep['speedup']:>7.2f}x  {sweep['speedup_mode']}"
            )

    payload = {
        "benchmark": "parallel_campaign_scaling",
        "attack": "gradmaxsearch",
        "budget": _BUDGET,
        "candidates": _CANDIDATES,
        "edges_per_node": 4,
        "smoke": smoke,
        "env": _benchenv.bench_env(),
        "results": rows,
        "notes": (
            "Flip sets, losses and rank shifts are asserted bit-identical "
            "between the serial campaign and every worker count. "
            "seconds_wall is the measured end-to-end executor time; "
            "seconds_critical_path = measured parent overhead (checkpoint "
            "load + sharding + spec capture + merge) + max per-worker CPU "
            "seconds — the wall time of a run whose workers never contend "
            "for cores. speedup uses wall when cpu_count >= workers, the "
            "critical path otherwise — see speedup_mode. cpu_count records "
            "which regime this run was in."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    run_parallel_scaling(smoke="--smoke" in sys.argv[1:])

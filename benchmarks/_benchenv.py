"""Benchmark environment control: thread pinning + provenance records.

Importing this module pins the BLAS/OpenMP thread-pool environment
variables (to 1 thread each unless the variable is already set), so wall
times measure the algorithms rather than a host-dependent thread pool.
The pinning only works if the import happens **before numpy loads** —
make ``import _benchenv`` the first import of every benchmark entry point
(``benchmarks/conftest.py`` does it for the pytest path, each writer
script for the CLI path).

Every ``BENCH_*.json`` artefact embeds :func:`bench_env` so a recorded
number can always be traced back to the thread counts, kernel backend and
interpreter that produced it.
"""

from __future__ import annotations

import os
import platform

#: The thread-pool knobs of every BLAS/OpenMP runtime numpy/scipy may link.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_threads(count: int = 1) -> None:
    """Pin every thread-pool variable not already set by the caller.

    ``setdefault`` so an explicit host override (e.g. a scaling study of
    the thread pools themselves) wins over the benchmark default.
    """
    for var in THREAD_ENV_VARS:
        os.environ.setdefault(var, str(count))


# Import-time side effect, by design: the variables only take effect if
# they are set before the first `import numpy` anywhere in the process.
pin_threads()


def bench_env() -> dict:
    """Provenance record embedded in every ``BENCH_*.json`` payload."""
    import numpy as np
    import scipy

    from repro.kernels import compiled_available, default_kernels

    return {
        "threads": {var: os.environ.get(var) for var in THREAD_ENV_VARS},
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "kernels_default": default_kernels(),
        "compiled_kernels_available": compiled_available(),
    }

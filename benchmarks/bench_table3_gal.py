"""Bench: regenerate Table III (GAL transfer attack).

Paper shape asserted: the targets' soft-label sum decreases (δ_B > 0) under
the black-box poison while global AUC stays usable.
"""

from benchmarks.conftest import run_once
from repro.experiments import table3_gal


def test_bench_table3(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, table3_gal.run, scale=bench_scale, seed=bench_seed)
    print()
    print(table3_gal.format_results(payload))
    for dataset, data in payload["datasets"].items():
        rows = data["rows"]
        assert rows[0]["budget"] == 0 and rows[0]["delta_b_pct"] == 0.0
        max_delta = max(r["delta_b_pct"] for r in rows)
        assert max_delta > 0.0, f"no soft-label decrease on {dataset}"
        # the victim is not destroyed globally (targeted, unnoticeable attack)
        assert min(r["auc"] for r in rows) > 0.5

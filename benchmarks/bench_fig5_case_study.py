"""Bench: regenerate Fig. 5 (egonet rewiring case studies)."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_case_study


def test_bench_fig5(benchmark, bench_scale, bench_seed):
    payload = run_once(
        benchmark, fig5_case_study.run, scale=bench_scale, seed=bench_seed, n_cases=3
    )
    print()
    print(fig5_case_study.format_results(payload))
    assert len(payload["cases"]) == 3
    for case in payload["cases"]:
        # the paper's cases cut scores by roughly an order of magnitude;
        # at bench scale we assert a substantial reduction
        assert case["ascore_after"] < case["ascore_before"]
    reductions = [
        1.0 - c["ascore_after"] / max(c["ascore_before"], 1e-9) for c in payload["cases"]
    ]
    assert max(reductions) > 0.3

"""GraphStore at paper scale: store-spec vs payload-spec workers.

The claim this artefact records: at the paper's full Blogcatalog scale
(88.8k nodes, ~2.1M edges), running a GradMaxSearch campaign through the
parallel executor with **store-spec** workers (each worker memory-maps the
on-disk CSR and reads the precomputed clean features) keeps per-worker peak
RSS materially below the **payload-spec** path (each worker holds its own
in-memory CSR copy and recomputes the O(Σ deg²) clean egonet features) —
while producing **bit-identical flips**, asserted at every size the
payload path runs at — the full 88.8k case included.

Three numbers per path and size:

* ``build_seconds`` — one-time store construction (streamed edge chunks +
  CSR memmap write + the precomputed feature pass), paid once then cached
  content-addressed;
* ``attack_seconds_wall`` — end-to-end executor wall time for the budget-5
  sweep (engine build included — this is where the payload path pays its
  per-worker feature recomputation);
* ``peak_worker_rss_mb`` — max per-worker ``ru_maxrss`` from the executor's
  ``.stats`` sidecars.  With the ``fork`` start method this includes pages
  inherited from the parent, so the store path is measured FIRST (before
  the payload copies exist in the parent) and the honest comparison is
  between the two paths' peaks, not against zero.

Run::

    PYTHONPATH=src python benchmarks/bench_store.py            # full (slow)
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # CI

Every run emits ``benchmarks/results/BENCH_store.json`` (smoke runs a
``_smoke`` sibling); the full-run artefact is committed.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import json
import os
import sys
import time
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.attacks import ParallelCampaignExecutor, grid_jobs
from repro.store import build_store

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_store.json"

_BUDGET = 5
_WORKERS = 2
_TARGETS = 8
_CANDIDATES = "target_incident"
_FULL_NODES = 88_800  # the blogcatalog-full recipe's node count


def _run_path(graph, jobs) -> dict:
    executor = ParallelCampaignExecutor(graph, workers=_WORKERS, backend="sparse")
    start = time.perf_counter()
    result = executor.run(jobs)
    seconds = time.perf_counter() - start
    rss = [s["max_rss_kb"] for s in executor.last_worker_stats]
    cpu = [s["cpu_seconds"] for s in executor.last_worker_stats]
    return {
        "attack_seconds_wall": round(seconds, 3),
        "worker_cpu_seconds": [round(s, 3) for s in cpu],
        "worker_max_rss_kb": rss,
        "peak_worker_rss_mb": round(max(rss) / 1024.0, 1),
        "_result": result,
    }


def _assert_identical(a, b) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.job_id == y.job_id
        assert x.flips_by_budget == y.flips_by_budget, f"flip mismatch: {x.job_id}"
        assert x.surrogate_by_budget == y.surrogate_by_budget
        assert x.rank_shifts == y.rank_shifts


def _run_case(n: int, cache_dir, seed: int = 7, compare_payload: bool = True) -> dict:
    scale = n / _FULL_NODES
    start = time.perf_counter()
    store = build_store("blogcatalog-full", cache_dir=cache_dir, scale=scale,
                        seed=seed)
    build_seconds = time.perf_counter() - start

    jobs = grid_jobs(
        "gradmaxsearch",
        [[t] for t in store.top_targets(_TARGETS)],
        budgets=[_BUDGET],
        candidates=_CANDIDATES,
    )
    # Store path FIRST: the payload path's array copies should not sit in
    # the parent (and be fork-inherited) while the store workers run.
    store_stats = _run_path(store, jobs)
    row = {
        "n": store.number_of_nodes,
        "edges": store.number_of_edges,
        "jobs": len(jobs),
        "budget": _BUDGET,
        "workers": _WORKERS,
        "build_seconds": round(build_seconds, 3),
        "store_dir_mb": round(
            sum(f.stat().st_size for f in store.path.iterdir()) / 2**20, 1
        ),
        "store": {k: v for k, v in store_stats.items() if k != "_result"},
    }
    if compare_payload:
        # detached_csr(): arrays copied, store tags dropped — the pipeline
        # treats it exactly like a graph that never touched the store.
        payload_stats = _run_path(store.detached_csr(), jobs)
        _assert_identical(store_stats["_result"], payload_stats["_result"])
        row["payload"] = {
            k: v for k, v in payload_stats.items() if k != "_result"
        }
        row["flip_sets_identical"] = True
        row["rss_ratio"] = round(
            payload_stats["peak_worker_rss_mb"]
            / max(store_stats["peak_worker_rss_mb"], 0.1),
            2,
        )
    return row


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #


def test_bench_store_parity(tmp_path, benchmark):
    row = benchmark.pedantic(
        lambda: _run_case(n=1500, cache_dir=tmp_path),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert row["flip_sets_identical"]
    assert row["store"]["peak_worker_rss_mb"] > 0


# --------------------------------------------------------------------- #
# Scaling study (the committed artefact)
# --------------------------------------------------------------------- #


def run_store_scaling(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Build + attack at each size; print a table, emit JSON.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.  The store cache honours
    ``$REPRO_STORE_CACHE`` (CI caches it keyed on the build-recipe hash).
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_store_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    cache_dir = os.environ.get("REPRO_STORE_CACHE", ".repro-store-cache")
    if smoke:
        cases = [(2000, True)]
    else:
        # At the full size the payload comparison runs too — its per-worker
        # clean-feature recomputation (minutes) IS the recorded contrast;
        # flip parity is asserted at every size it runs at.
        cases = [(10_000, True), (_FULL_NODES, True)]

    print("GraphStore: store-spec vs payload-spec executor workers")
    print(
        f"(gradmaxsearch, budget={_BUDGET}, {_TARGETS} targets, "
        f"workers={_WORKERS}, candidates={_CANDIDATES}; cpus={os.cpu_count()})"
    )
    print()
    rows = []
    for n, compare in cases:
        row = _run_case(n=n, cache_dir=cache_dir, compare_payload=compare)
        rows.append(row)
        print(
            f"n={row['n']}  m={row['edges']}  build={row['build_seconds']:.2f}s  "
            f"store-dir={row['store_dir_mb']}MB"
        )
        for path in ("store", "payload"):
            if path not in row:
                continue
            stats = row[path]
            print(
                f"  {path:>8}: attack={stats['attack_seconds_wall']:>8.2f}s  "
                f"peak-worker-rss={stats['peak_worker_rss_mb']:>7.1f}MB"
            )
        if "rss_ratio" in row:
            print(f"  payload/store RSS ratio: {row['rss_ratio']}x")

    payload = {
        "benchmark": "graph_store_scaling",
        "attack": "gradmaxsearch",
        "budget": _BUDGET,
        "targets": _TARGETS,
        "workers": _WORKERS,
        "candidates": _CANDIDATES,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "env": _benchenv.bench_env(),
        "results": rows,
        "notes": (
            "store = workers rebuild engines from a store-kind EngineSpec "
            "(mmap the on-disk CSR, read precomputed clean features); "
            "payload = workers receive the CSR arrays and recompute clean "
            "features. Flip sets/losses/rank shifts asserted bit-identical "
            "wherever both paths run. peak_worker_rss_mb is per-worker "
            "ru_maxrss (fork start method: inherited parent pages count, "
            "so compare the two paths, not absolute values; the store path "
            "runs first so payload copies never sit in its parent image). "
            "build_seconds includes the streamed edge generation, CSR "
            "memmap write and the one-time O(sum deg^2) feature pass the "
            "store amortises away from every later worker."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    run_store_scaling(smoke="--smoke" in sys.argv[1:])

"""Bench: regenerate Table II (permutation-test p-values for N and E).

Paper shape asserted: the feature-N distribution is never significantly
shifted at the 99% level (the attack is unnoticeable through N).
"""

from benchmarks.conftest import run_once
from repro.experiments import table2_side_effects


def test_bench_table2(benchmark, bench_scale, bench_seed):
    payload = run_once(
        benchmark, table2_side_effects.run, scale=bench_scale, seed=bench_seed
    )
    print()
    print(table2_side_effects.format_results(payload))
    for dataset, rows in payload["table"].items():
        assert rows, dataset
        for row in rows:
            assert 0.0 < row["p_n"] <= 1.0
            assert 0.0 < row["p_e"] <= 1.0
            # N never significantly shifted at the 1% level (paper's finding)
            assert row["p_n"] > 0.01

"""Bench: regenerate Fig. 10 (robust-estimator defence curves).

Paper shape asserted: Huber/RANSAC mitigate the attack somewhat, but the
attack remains effective (τ at max budget stays large under every defence).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig10_defense


def test_bench_fig10(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, fig10_defense.run, scale=bench_scale, seed=bench_seed)
    print()
    print(fig10_defense.format_results(payload))
    mitigations = []
    for dataset, data in payload["datasets"].items():
        tau = data["tau"]
        assert tau["ols"][-1] > 0.2, f"attack ineffective on {dataset}"
        best_defense = min(tau["huber"][-1], tau["ransac"][-1])
        mitigations.append(tau["ols"][-1] - best_defense)
        # defences do not fully neutralise the attack (paper conclusion)
        assert best_defense > 0.0
    # at least one dataset shows visible mitigation
    assert max(mitigations) > -0.05

"""Bench: regenerate Figs. 8/9 (t-SNE of penultimate features + probes)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig8_9_embeddings


def test_bench_fig8_9(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, fig8_9_embeddings.run, scale=bench_scale, seed=bench_seed)
    print()
    print(fig8_9_embeddings.format_results(payload))
    assert len(payload["panels"]) == 4
    for panel in payload["panels"]:
        clean = np.array(panel["clean_coordinates"])
        poisoned = np.array(panel["poisoned_coordinates"])
        assert clean.shape == (panel["n_test"], 2)
        assert poisoned.shape == (panel["n_test"], 2)
        assert np.isfinite(clean).all() and np.isfinite(poisoned).all()

"""PRBCD block candidates at paper scale: unconstrained attacks in O(block).

The claim this artefact records: with ``candidates="block"`` the gradient
attacks run **budget-5 campaigns on the full Blogcatalog store (88.8k
nodes, ~2.1M edges)** with per-worker peak RSS bounded by the block size,
not by the n(n−1)/2 ≈ 3.9e9 pair count the ``full`` strategy would need —
while staying fully deterministic: two identical-seed runs are asserted to
select bit-identical flip sets (the block seed and size are content-hashed
into every job id, so checkpoints resume the exact same blocks).

Two sections per run:

* **full scale** — GradMaxSearch and BinarizedAttack budget-5 block
  campaigns on ``blogcatalog-full``, each executed TWICE with the same
  seed (the determinism assertion), with peak per-worker ``ru_maxrss``
  asserted under a fixed bound;
* **quality-vs-memory curve** — GradMaxSearch at a mid scale over the
  locality baselines (``two_hop``, ``adaptive_gradient``) and a ladder of
  block sizes, recording mean score decrease τ against peak worker RSS:
  the trade the block size knob buys.

Run::

    PYTHONPATH=src python benchmarks/bench_prbcd.py            # full (slow)
    PYTHONPATH=src python benchmarks/bench_prbcd.py --smoke    # CI

Every run emits ``benchmarks/results/BENCH_prbcd.json`` (smoke runs a
``_smoke`` sibling); the full-run artefact is committed.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import json
import os
import sys
import time
from pathlib import Path

from repro.attacks import ParallelCampaignExecutor, grid_jobs
from repro.kernels import compiled_available
from repro.store import build_store

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_prbcd.json"

_BUDGET = 5
_WORKERS = 2
_TARGETS = 4
_FULL_NODES = 88_800  # the blogcatalog-full recipe's node count
_RSS_BOUND_MB = 512   # the "bounded RSS" acceptance line at full scale

#: The numpy scatter kernel is O(m) per distinct hub row, which a random
#: block hits constantly at 2.1M edges — the compiled O(deg) kernels are
#: the intended pairing for full-scale blocks.  Fall back for hosts
#: without a C toolchain (the mid-scale curve still completes there).
_KERNELS = "compiled" if compiled_available() else "numpy"


def _attack_jobs(attack, targets, *, candidates, **params):
    return grid_jobs(
        attack, [[int(t)] for t in targets], budgets=[_BUDGET],
        candidates=candidates, **params,
    )


def _run_jobs(store, jobs) -> dict:
    executor = ParallelCampaignExecutor(
        store, workers=_WORKERS, backend="sparse", kernels=_KERNELS
    )
    start = time.perf_counter()
    result = executor.run(jobs)
    seconds = time.perf_counter() - start
    rss = [s["max_rss_kb"] for s in executor.last_worker_stats]
    taus = [o.score_decrease for o in result]
    return {
        "attack_seconds_wall": round(seconds, 3),
        "worker_max_rss_kb": rss,
        "peak_worker_rss_mb": round(max(rss) / 1024.0, 1),
        "tau_mean": sum(taus) / len(taus),
        "_result": result,
    }


def _flip_sets(result) -> dict:
    return {o.job_id: o.flips_by_budget for o in result}


def _block_attack_case(
    n: int, cache_dir, block_size: int, iterations: int = 15, seed: int = 7
) -> dict:
    """Both gradient attacks, block strategy, run twice for determinism."""
    start = time.perf_counter()
    store = build_store(
        "blogcatalog-full", cache_dir=cache_dir, scale=n / _FULL_NODES,
        seed=seed,
    )
    build_seconds = time.perf_counter() - start
    targets = store.top_targets(_TARGETS)
    case = {
        "n": store.number_of_nodes,
        "edges": store.number_of_edges,
        "budget": _BUDGET,
        "workers": _WORKERS,
        "block_size": block_size,
        "build_seconds": round(build_seconds, 3),
        "attacks": {},
    }
    for attack, params in (
        ("gradmaxsearch", {}),
        ("binarizedattack", {"iterations": iterations}),
    ):
        jobs = _attack_jobs(
            attack, targets, candidates="block",
            block_size=block_size, block_seed=1, **params,
        )
        first = _run_jobs(store, jobs)
        second = _run_jobs(store, jobs)
        assert _flip_sets(first["_result"]) == _flip_sets(second["_result"]), (
            f"{attack}: identical-seed block runs diverged"
        )
        peak = max(first["peak_worker_rss_mb"], second["peak_worker_rss_mb"])
        assert peak < _RSS_BOUND_MB, (
            f"{attack}: peak worker RSS {peak}MB breaches {_RSS_BOUND_MB}MB"
        )
        case["attacks"][attack] = {
            "deterministic_flips": True,
            "jobs": len(jobs),
            "tau_mean": round(first["tau_mean"], 6),
            "attack_seconds_wall": [
                first["attack_seconds_wall"], second["attack_seconds_wall"]
            ],
            "peak_worker_rss_mb": peak,
        }
    return case


def _quality_memory_curve(n: int, cache_dir, block_sizes, seed: int = 7) -> dict:
    """GradMaxSearch τ vs peak worker RSS: blocks against locality baselines."""
    store = build_store(
        "blogcatalog-full", cache_dir=cache_dir, scale=n / _FULL_NODES,
        seed=seed,
    )
    targets = store.top_targets(_TARGETS)
    points = []
    sweeps = [("two_hop", {}), ("adaptive_gradient", {})]
    sweeps += [
        ("block", {"block_size": size, "block_seed": 1})
        for size in block_sizes
    ]
    for strategy, params in sweeps:
        stats = _run_jobs(
            store, _attack_jobs("gradmaxsearch", targets,
                                candidates=strategy, **params)
        )
        points.append(
            {
                "candidates": strategy,
                "block_size": params.get("block_size"),
                "tau_mean": round(stats["tau_mean"], 6),
                "attack_seconds_wall": stats["attack_seconds_wall"],
                "peak_worker_rss_mb": stats["peak_worker_rss_mb"],
            }
        )
    return {
        "n": store.number_of_nodes,
        "edges": store.number_of_edges,
        "attack": "gradmaxsearch",
        "budget": _BUDGET,
        "points": points,
    }


# --------------------------------------------------------------------- #
# CI smoke (pytest entry)
# --------------------------------------------------------------------- #


def test_bench_prbcd_smoke(tmp_path, benchmark):
    case = benchmark.pedantic(
        lambda: _block_attack_case(
            n=1500, cache_dir=tmp_path, block_size=4096, iterations=8
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    for attack in ("gradmaxsearch", "binarizedattack"):
        assert case["attacks"][attack]["deterministic_flips"]
        assert case["attacks"][attack]["peak_worker_rss_mb"] > 0


# --------------------------------------------------------------------- #
# Full run (the committed artefact)
# --------------------------------------------------------------------- #


def run_prbcd(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Full-scale block campaigns + the quality-vs-memory curve.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.  The store cache honours
    ``$REPRO_STORE_CACHE`` (CI caches it keyed on the build-recipe hash).
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_prbcd_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    cache_dir = os.environ.get("REPRO_STORE_CACHE", ".repro-store-cache")
    if smoke:
        # 2000/88800: the exact scale the CI store-cache key is built for
        full_case = (2000, 4096, 8)
        curve_case = (2000, (1024, 4096))
    else:
        full_case = (_FULL_NODES, 32_768, 15)
        curve_case = (10_000, (4096, 32_768, 131_072))

    print("PRBCD block candidates: full-store attacks in O(block_size) memory")
    print(
        f"(budget={_BUDGET}, {_TARGETS} targets, workers={_WORKERS}, "
        f"kernels={_KERNELS}; cpus={os.cpu_count()})"
    )
    print()
    n, block_size, iterations = full_case
    case = _block_attack_case(
        n=n, cache_dir=cache_dir, block_size=block_size, iterations=iterations
    )
    print(
        f"n={case['n']}  m={case['edges']}  block={case['block_size']}  "
        f"build={case['build_seconds']:.2f}s"
    )
    for attack, row in case["attacks"].items():
        seconds = "/".join(f"{s:.2f}s" for s in row["attack_seconds_wall"])
        print(
            f"  {attack:>16}: tau={row['tau_mean']:.6f}  runs={seconds}  "
            f"peak-worker-rss={row['peak_worker_rss_mb']:>6.1f}MB  "
            f"deterministic={row['deterministic_flips']}"
        )

    n, block_sizes = curve_case
    curve = _quality_memory_curve(n=n, cache_dir=cache_dir,
                                  block_sizes=block_sizes)
    print(f"\nquality-vs-memory (gradmaxsearch, n={curve['n']}):")
    for point in curve["points"]:
        label = point["candidates"]
        if point["block_size"]:
            label += f"@{point['block_size']}"
        print(
            f"  {label:>24}: tau={point['tau_mean']:.6f}  "
            f"attack={point['attack_seconds_wall']:>7.2f}s  "
            f"peak-worker-rss={point['peak_worker_rss_mb']:>6.1f}MB"
        )

    payload = {
        "benchmark": "prbcd_block_candidates",
        "budget": _BUDGET,
        "targets": _TARGETS,
        "workers": _WORKERS,
        "kernels": _KERNELS,
        "rss_bound_mb": _RSS_BOUND_MB,
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "env": _benchenv.bench_env(),
        "full_scale": case,
        "quality_vs_memory": curve,
        "notes": (
            "full_scale = gradmaxsearch + binarizedattack budget-5 block "
            "campaigns on blogcatalog-full, each executed twice with the "
            "same block seed; flip sets asserted bit-identical between the "
            "two runs and peak per-worker ru_maxrss asserted under "
            "rss_bound_mb. quality_vs_memory = gradmaxsearch tau (mean "
            "score decrease over the top targets) against peak worker RSS "
            "for the two_hop / adaptive_gradient locality baselines and a "
            "ladder of block sizes — the block is the only strategy whose "
            "memory is independent of n, so it is the only one that runs "
            "unconstrained attacks at the 88.8k-node scale at all."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    run_prbcd(smoke="--smoke" in sys.argv[1:])

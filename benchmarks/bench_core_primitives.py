"""Microbenchmarks of the hot primitives (multi-round pytest-benchmark).

These are classic throughput benches: egonet feature extraction, the full
differentiable surrogate forward+backward, one BinarizedAttack iteration,
and OddBall end-to-end scoring.  They guard against performance regressions
in the autograd engine.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.graph.datasets import load_dataset
from repro.graph.features import egonet_features
from repro.oddball.detector import OddBall
from repro.oddball.surrogate import adjacency_gradient, surrogate_loss


@pytest.fixture(scope="module")
def medium_graph():
    return load_dataset("wikivote", rng=7, scale=0.25).graph


@pytest.fixture(scope="module")
def medium_targets(medium_graph):
    return OddBall().analyze(medium_graph).top_k(5).tolist()


def test_bench_egonet_features(benchmark, medium_graph):
    adjacency = medium_graph.adjacency
    n, e = benchmark(egonet_features, adjacency)
    assert len(n) == medium_graph.number_of_nodes
    assert (e >= n - 1e-9).all()


def test_bench_oddball_analyze(benchmark, medium_graph):
    detector = OddBall()
    report = benchmark(detector.analyze, medium_graph)
    assert np.isfinite(report.scores).all()


def test_bench_surrogate_forward(benchmark, medium_graph, medium_targets):
    adjacency = Tensor(medium_graph.adjacency)

    def forward():
        return float(surrogate_loss(adjacency, medium_targets).data)

    loss = benchmark(forward)
    assert loss >= 0.0


def test_bench_surrogate_forward_backward(benchmark, medium_graph, medium_targets):
    adjacency = medium_graph.adjacency

    def forward_backward():
        return adjacency_gradient(adjacency, medium_targets)

    gradient = benchmark(forward_backward)
    assert np.allclose(gradient, gradient.T)


def test_bench_autograd_matmul_backward(benchmark):
    rng = np.random.default_rng(0)
    a = Tensor(rng.random((300, 300)), requires_grad=True)
    b = Tensor(rng.random((300, 300)), requires_grad=True)

    def run():
        a.zero_grad()
        b.zero_grad()
        ((a @ b) * 0.5).sum().backward()
        return a.grad

    grad = benchmark(run)
    assert grad.shape == (300, 300)

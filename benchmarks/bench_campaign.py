"""AttackCampaign scaling: one shared engine vs independent sequential runs.

The campaign's claim is purely *amortisation*: flip sets are bit-identical
to independent ``attack()`` calls (asserted here on every run), but the
per-job fixed costs — adjacency validation, the O(n + m) neighbour/feature
build of the sparse engine, candidate-array construction, poisoned-graph
materialisation for evaluation — are paid once instead of once per job.

Two sequential baselines are timed:

* ``sequential_with_eval`` — what a user reproducing the campaign's
  *outputs* runs per target: ``attack()`` plus τ/rank evaluation through
  the public API (``apply_flips`` + ``anomaly_scores_sparse`` + an
  argsort).  This is the apples-to-apples baseline — the campaign records
  exactly these artefacts — and the headline speedup.
* ``sequential_attack_only`` — bare ``attack()`` calls, no evaluation;
  reported for transparency.

The artefact also times the incremental-CSR fold
(:meth:`repro.graph.incremental.IncrementalEgonetFeatures.adjacency_csr`)
against the old full per-row Python rebuild, documenting that GradMax's
sparse engine no longer rebuilds the CSR per permanent flip.

Run the scaling study directly::

    PYTHONPATH=src python benchmarks/bench_campaign.py            # full
    PYTHONPATH=src python benchmarks/bench_campaign.py --smoke    # CI

Every run emits ``benchmarks/results/BENCH_campaign.json`` (smoke runs a
``_smoke`` sibling); the full-run artefact is committed.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import AttackCampaign, GradMaxSearch, apply_flips, grid_jobs
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.graph.sparse import anomaly_scores_sparse
from repro.oddball.scores import rank_positions

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_campaign.json"

_BUDGET = 5
_CANDIDATES = "target_incident"


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


def _campaign_instance(n: int, n_targets: int, seed: int = 0):
    """A mid-density sparse graph plus its top-scoring OddBall targets."""
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    scores = anomaly_scores_sparse(graph)
    targets = np.argsort(-scores, kind="stable")[:n_targets].tolist()
    return graph, targets, scores


def _run_case(n: int, n_targets: int, seed: int = 0) -> dict:
    graph, targets, clean_scores = _campaign_instance(n, n_targets, seed)
    clean_ranks = rank_positions(clean_scores)

    # -- sequential baseline: independent attack() + public-API evaluation
    start = time.perf_counter()
    sequential = []
    for target in targets:
        result = GradMaxSearch(backend="sparse").attack(
            graph, [target], _BUDGET, candidates=_CANDIDATES
        )
        poisoned_scores = anomaly_scores_sparse(apply_flips(graph, result.flips()))
        tau = (
            (clean_scores[target] - poisoned_scores[target]) / clean_scores[target]
            if clean_scores[target] > 0
            else 0.0
        )
        shift = int(rank_positions(poisoned_scores)[target] - clean_ranks[target])
        sequential.append((result, float(tau), shift))
    seconds_with_eval = time.perf_counter() - start

    # -- sequential baseline: bare attack() calls (no evaluation)
    start = time.perf_counter()
    for target in targets:
        GradMaxSearch(backend="sparse").attack(
            graph, [target], _BUDGET, candidates=_CANDIDATES
        )
    seconds_attack_only = time.perf_counter() - start

    # -- the campaign: one shared engine, retarget + restore between jobs
    jobs = grid_jobs(
        "gradmaxsearch",
        [[t] for t in targets],
        budgets=[_BUDGET],
        candidates=_CANDIDATES,
    )
    start = time.perf_counter()
    campaign = AttackCampaign(graph, backend="sparse").run(jobs)
    seconds_campaign = time.perf_counter() - start

    # Flip sets (and the recorded evaluation artefacts) must be identical —
    # the campaign is a performance lever, never a semantics change.
    for (result, tau, shift), outcome, target in zip(sequential, campaign, targets):
        assert {
            b: result.flips(b) for b in result.budgets
        } == outcome.flips_by_budget, f"flip mismatch for target {target}"
        assert abs(tau - outcome.score_decrease) < 1e-9
        assert shift == outcome.rank_shifts[target]

    return {
        "n": n,
        "edges": int(graph.nnz // 2),
        "jobs": len(jobs),
        "budget": _BUDGET,
        "candidates": _CANDIDATES,
        "seconds_sequential_with_eval": round(seconds_with_eval, 4),
        "seconds_sequential_attack_only": round(seconds_attack_only, 4),
        "seconds_campaign": round(seconds_campaign, 4),
        "speedup_vs_with_eval": round(seconds_with_eval / seconds_campaign, 2),
        "speedup_vs_attack_only": round(seconds_attack_only / seconds_campaign, 2),
        "flip_sets_identical": True,
    }


def _time_csr_maintenance(n: int, flips: int = 5, seed: int = 0) -> dict:
    """Incremental fold vs full Python rebuild, per materialisation."""
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    engine = IncrementalEgonetFeatures(graph)
    rng = np.random.default_rng(seed)
    pairs = [
        (int(u), int(v))
        for u, v in rng.integers(0, n, size=(flips, 2))
        if u != v
    ]

    start = time.perf_counter()
    for u, v in pairs:
        engine.flip(u, v)
        engine.adjacency_csr()  # incremental fold of one net toggle
    fold_ms = (time.perf_counter() - start) / max(len(pairs), 1) * 1000.0

    start = time.perf_counter()
    for _ in pairs:
        engine._rebuild_csr()  # the old per-flip full rebuild
    rebuild_ms = (time.perf_counter() - start) / max(len(pairs), 1) * 1000.0

    engine.rollback(len(pairs))
    return {
        "n": n,
        "fold_ms_per_flip": round(fold_ms, 3),
        "rebuild_ms_per_flip": round(rebuild_ms, 3),
        "fold_speedup": round(rebuild_ms / fold_ms, 1) if fold_ms > 0 else None,
    }


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #


def test_bench_campaign_matches_sequential(benchmark):
    row = benchmark.pedantic(
        lambda: _run_case(n=500, n_targets=8),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert row["flip_sets_identical"]
    assert row["jobs"] == 8


def test_bench_campaign_resume(tmp_path):
    graph, targets, _ = _campaign_instance(n=300, n_targets=6)
    jobs = grid_jobs(
        "gradmaxsearch", [[t] for t in targets], budgets=[_BUDGET],
        candidates=_CANDIDATES,
    )
    checkpoint = tmp_path / "campaign.json"
    AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs[:3])
    resumed = AttackCampaign(graph, checkpoint_path=checkpoint).run(jobs)
    fresh = AttackCampaign(graph).run(jobs)
    assert resumed.resumed_jobs == 3
    for a, b in zip(resumed, fresh):
        assert a.flips_by_budget == b.flips_by_budget


def test_bench_csr_fold_completes():
    row = _time_csr_maintenance(n=1000)
    assert row["fold_ms_per_flip"] >= 0.0


# --------------------------------------------------------------------- #
# Scaling study (the committed artefact)
# --------------------------------------------------------------------- #


def run_campaign_scaling(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Time campaign vs sequential across sizes; print a table, emit JSON.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_campaign_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    cases = [(500, 8)] if smoke else [(2000, 50), (10000, 50)]
    csr_sizes = [1000] if smoke else [2000, 10000]

    print("AttackCampaign: one shared sparse engine vs independent runs")
    print(
        f"(gradmaxsearch, budget={_BUDGET}, candidates={_CANDIDATES}, "
        "m ≈ 4n; seconds)"
    )
    print()
    header = (
        f"{'n':>7} {'jobs':>5} {'seq+eval':>9} {'seq-only':>9} "
        f"{'campaign':>9} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for n, n_targets in cases:
        row = _run_case(n=n, n_targets=n_targets)
        rows.append(row)
        print(
            f"{n:>7} {row['jobs']:>5} {row['seconds_sequential_with_eval']:>9.3f} "
            f"{row['seconds_sequential_attack_only']:>9.3f} "
            f"{row['seconds_campaign']:>9.3f} "
            f"{row['speedup_vs_with_eval']:>7.1f}x"
        )

    print()
    print("incremental CSR fold vs full per-row Python rebuild (ms per flip):")
    csr_rows = [_time_csr_maintenance(n) for n in csr_sizes]
    for row in csr_rows:
        print(
            f"  n={row['n']:>6}: fold {row['fold_ms_per_flip']:.3f} ms  "
            f"rebuild {row['rebuild_ms_per_flip']:.3f} ms  "
            f"({row['fold_speedup']}x)"
        )

    payload = {
        "benchmark": "campaign_scaling",
        "attack": "gradmaxsearch",
        "budget": _BUDGET,
        "candidates": _CANDIDATES,
        "edges_per_node": 4,
        "smoke": smoke,
        "env": _benchenv.bench_env(),
        "results": rows,
        "csr_maintenance": csr_rows,
        "notes": (
            "seq+eval reruns attack() per target plus the public-API "
            "evaluation the campaign records (tau + rank shift); seq-only "
            "is bare attack() calls. Flip sets are asserted identical "
            "between campaign and sequential runs."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    run_campaign_scaling(smoke="--smoke" in sys.argv[1:])

"""Ablation benches for BinarizedAttack's design choices (DESIGN.md §5).

Not a paper artefact — these quantify the two implementation decisions the
reproduction documents: gradient normalisation and the λ sweep.
"""


from repro.attacks import BinarizedAttack, GradMaxSearch, OddBallHeuristic, RandomAttack
from repro.graph.datasets import load_dataset
from repro.oddball.detector import OddBall
from repro.utils.rng import SeedSequenceFactory


def _setup(bench_scale, bench_seed):
    seeds = SeedSequenceFactory(bench_seed)
    dataset = load_dataset("bitcoin-alpha", rng=seeds.generator("dataset-bitcoin-alpha"),
                           scale=bench_scale.graph_scale)
    report = OddBall().analyze(dataset.graph)
    rng = seeds.generator("ablation-targets")
    pool = report.top_k(min(50, dataset.n_nodes))
    targets = sorted(int(v) for v in rng.choice(pool, size=5, replace=False))
    budget = max(bench_scale.budgets_for(dataset.graph.number_of_edges)[-1], 6)
    return dataset.graph, targets, budget


def test_bench_ablation_gradient_normalization(benchmark, bench_scale, bench_seed):
    """Normalised vs textbook-PGD gradients at the same iteration budget."""
    graph, targets, budget = _setup(bench_scale, bench_seed)

    def run():
        normalized = BinarizedAttack(iterations=bench_scale.attack_iterations).attack(
            graph, targets, budget
        )
        textbook = BinarizedAttack(
            iterations=bench_scale.attack_iterations,
            normalize_gradient=False,
            lr=1e-3,
            lambdas=(1e-4, 1e-3),
        ).attack(graph, targets, budget)
        return {
            "normalized": normalized.score_decrease(targets),
            "textbook_pgd": textbook.score_decrease(targets),
        }

    taus = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation gradient normalisation: {taus}")
    assert taus["normalized"] >= taus["textbook_pgd"] - 0.1


def test_bench_ablation_lambda_sweep(benchmark, bench_scale, bench_seed):
    """Single-λ runs vs the full sweep: the sweep should match the best λ."""
    graph, targets, budget = _setup(bench_scale, bench_seed)
    iterations = bench_scale.attack_iterations

    def run():
        out = {}
        for lam in (0.3, 0.1, 0.02):
            result = BinarizedAttack(iterations=iterations, lambdas=(lam,)).attack(
                graph, targets, budget
            )
            out[f"lambda={lam}"] = result.score_decrease(targets)
        sweep = BinarizedAttack(iterations=iterations).attack(graph, targets, budget)
        out["sweep"] = sweep.score_decrease(targets)
        return out

    taus = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation lambda sweep: {taus}")
    singles = [v for k, v in taus.items() if k.startswith("lambda=")]
    assert taus["sweep"] >= max(singles) - 1e-9  # sweep pools all candidates


def test_bench_ablation_gradient_guidance(benchmark, bench_scale, bench_seed):
    """How much of the attack is gradient guidance vs random perturbation."""
    graph, targets, budget = _setup(bench_scale, bench_seed)

    def run():
        return {
            "binarized": BinarizedAttack(iterations=bench_scale.attack_iterations)
            .attack(graph, targets, budget)
            .score_decrease(targets),
            "gradmax": GradMaxSearch().attack(graph, targets, budget).score_decrease(targets),
            "heuristic": OddBallHeuristic(rng=0)
            .attack(graph, targets, budget)
            .score_decrease(targets),
            "random": RandomAttack(rng=0).attack(graph, targets, budget).score_decrease(targets),
            "random_target_biased": RandomAttack(rng=0, target_biased=True)
            .attack(graph, targets, budget)
            .score_decrease(targets),
        }

    taus = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation gradient guidance: {taus}")
    # gradient-based methods beat blind perturbation ...
    assert taus["binarized"] > taus["random"] + 0.1
    assert taus["gradmax"] > taus["random"] + 0.1
    # ... and the domain-knowledge heuristic sits in between
    assert taus["heuristic"] > taus["random"]
    assert taus["binarized"] >= taus["heuristic"] - 0.1

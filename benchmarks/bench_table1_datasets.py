"""Bench: regenerate Table I (dataset statistics)."""

from benchmarks.conftest import run_once
from repro.experiments import table1_datasets


def test_bench_table1(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, table1_datasets.run, scale=bench_scale, seed=bench_seed)
    print()
    print(table1_datasets.format_results(payload))
    rows = {r["name"]: r for r in payload["rows"]}
    assert set(rows) == {"er", "ba", "blogcatalog", "wikivote", "bitcoin-alpha"}
    # every graph within a few percent of the (scaled) paper counts
    for row in rows.values():
        assert abs(row["nodes"] - row["paper_nodes"]) <= max(3, 0.03 * row["paper_nodes"])
        assert abs(row["edges"] - row["paper_edges"]) <= max(10, 0.12 * row["paper_edges"])

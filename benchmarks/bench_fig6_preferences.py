"""Bench: regenerate Fig. 6 (attack preference across AScore groups).

Paper shape asserted: the high-AScore group loses far more score than the
low/medium groups at the maximum budget.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig6_preferences


def test_bench_fig6(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, fig6_preferences.run, scale=bench_scale, seed=bench_seed)
    print()
    print(fig6_preferences.format_results(payload))
    tau = payload["tau_by_group"]
    assert tau["high"][-1] > tau["medium"][-1]
    assert tau["high"][-1] > tau["low"][-1]
    # regression exponent stays in the paper's power-law band
    for fit in (payload["regression_clean"], payload["regression_poisoned"]):
        assert 0.8 <= fit["beta1"] <= 2.2

"""Telemetry overhead: a fully traced campaign vs the untraced baseline.

Telemetry's claim is *observability for free*: tracing a run changes no
result (flip sets asserted bit-identical here on every comparison) and
costs almost no time — spans are two ``perf_counter_ns`` reads and one
buffered JSONL append, counters are a dict update that only becomes I/O
when the root span closes.  This study times the worst reasonable case,
a budget-5 gradmaxsearch sweep where every job emits job/attack/score
spans and the kernel counters tick on every flip, and records the
overhead percentage against the same sweep with telemetry off.

The committed artefact pins the overhead **target at ≤ 3 %** at the
largest (n=10,000) case; the full run asserts it (best-of-repeats
against best-of-repeats, so scheduler noise on a quiet host doesn't
fail a healthy build).  Smaller cases are reported for transparency —
per-run fixed costs dominate sweeps that finish in under 0.1 s.  CI
smokes assert behaviour only — parity and a non-empty trace — because
shared-runner timings are noise.

Run the study directly::

    PYTHONPATH=src python benchmarks/bench_telemetry.py            # full
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_telemetry.py --trace-out DIR

``--trace-out`` keeps the largest case's trace directory (the weekly
benchmark job uploads it as an artifact next to the ``BENCH_*.json``
files, so a real cross-process trace is always one download away).

Every run emits ``benchmarks/results/BENCH_telemetry.json`` (smoke runs
a ``_smoke`` sibling); the full-run artefact is committed.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
from scipy import sparse

from repro import telemetry
from repro.attacks import AttackCampaign, grid_jobs
from repro.graph.sparse import anomaly_scores_sparse
from repro.telemetry.report import summarize

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_telemetry.json"

_BUDGET = 5
_CANDIDATES = "target_incident"
_OVERHEAD_TARGET_PCT = 3.0


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


def _campaign_instance(n: int, n_targets: int, seed: int = 0):
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    scores = anomaly_scores_sparse(graph)
    targets = np.argsort(-scores, kind="stable")[:n_targets].tolist()
    return graph, targets


def _sweep(graph, targets):
    return grid_jobs(
        "gradmaxsearch",
        [[t] for t in targets],
        budgets=[_BUDGET],
        candidates=_CANDIDATES,
    )


def _timed_run(graph, jobs, trace_dir=None):
    """One campaign run (traced into ``trace_dir`` when given), timed."""
    start = time.perf_counter()
    result = AttackCampaign(
        graph, backend="sparse", telemetry=trace_dir
    ).run(jobs)
    seconds = time.perf_counter() - start
    telemetry.shutdown()
    return result, seconds


def _run_case(
    n: int, n_targets: int, repeats: int = 3, seed: int = 0,
    keep_trace: "Path | None" = None,
) -> dict:
    graph, targets = _campaign_instance(n, n_targets, seed)
    jobs = _sweep(graph, targets)

    # Interleave off/on repeats so cache warm-up and host drift hit both
    # modes equally; compare best against best.
    off_times, on_times = [], []
    baseline = traced = None
    trace_stats = {}
    for _ in range(repeats):
        baseline, seconds = _timed_run(graph, jobs)
        off_times.append(seconds)
        with tempfile.TemporaryDirectory() as scratch:
            trace_dir = Path(scratch) / "trace"
            traced, seconds = _timed_run(graph, jobs, trace_dir)
            on_times.append(seconds)
            events = telemetry.load_trace_dir(trace_dir)
            summary = summarize(events)
            trace_stats = {
                "spans": summary["spans"],
                "counter_records": summary["counter_records"],
                "trace_bytes": sum(
                    p.stat().st_size for p in trace_dir.glob("trace-*.jsonl")
                ),
            }
            if keep_trace is not None:
                keep_trace.mkdir(parents=True, exist_ok=True)
                for sink in trace_dir.glob("trace-*.jsonl"):
                    shutil.copy2(sink, keep_trace / sink.name)

    for off_outcome, on_outcome in zip(baseline, traced):
        assert off_outcome.flips_by_budget == on_outcome.flips_by_budget
        assert off_outcome.score_after == on_outcome.score_after

    seconds_off = min(off_times)
    seconds_on = min(on_times)
    overhead_pct = (seconds_on - seconds_off) / seconds_off * 100.0
    return {
        "n": n,
        "edges": int(graph.nnz // 2),
        "jobs": len(jobs),
        "budget": _BUDGET,
        "candidates": _CANDIDATES,
        "repeats": repeats,
        "seconds_off": round(seconds_off, 4),
        "seconds_on": round(seconds_on, 4),
        "overhead_pct": round(overhead_pct, 2),
        "flip_sets_identical": True,
        **trace_stats,
    }


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #


def test_bench_telemetry_parity_smoke():
    row = _run_case(n=400, n_targets=6, repeats=1)
    assert row["flip_sets_identical"]
    assert row["spans"] > row["jobs"]  # campaign.run + per-job span tree
    assert row["trace_bytes"] > 0


def test_bench_telemetry_report_loads(tmp_path):
    graph, targets = _campaign_instance(n=300, n_targets=4)
    result = AttackCampaign(
        graph, telemetry=tmp_path / "trace"
    ).run(_sweep(graph, targets))
    telemetry.shutdown()
    assert len(result) == 4
    summary = summarize(telemetry.load_trace_dir(tmp_path / "trace"))
    assert [row["name"] for row in summary["phases"]][0] in (
        "campaign.run", "job", "job.attack"
    )
    assert summary["critical_path"][0]["name"] == "campaign.run"


# --------------------------------------------------------------------- #
# Overhead study (the committed artefact)
# --------------------------------------------------------------------- #


def run_telemetry_overhead(
    smoke: bool = False,
    output: "Path | None" = None,
    trace_out: "Path | None" = None,
) -> dict:
    """Time traced vs untraced sweeps; print a table, emit JSON.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_telemetry_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    # The gated case is deliberately the longest (n=10,000, 40 jobs,
    # ~1 s per run): per-run fixed costs and host jitter are a few
    # milliseconds, so only a sweep well clear of that resolves a 3%
    # target instead of measuring the container's scheduler.
    cases = [(500, 8)] if smoke else [(1000, 10), (4000, 16), (10000, 40)]
    repeats = 1 if smoke else 5

    print("repro.telemetry: fully traced campaign vs untraced baseline")
    print(
        f"(gradmaxsearch, budget={_BUDGET}, candidates={_CANDIDATES}, "
        f"m ≈ 4n; best of {repeats}, seconds)"
    )
    print()
    header = (
        f"{'n':>7} {'jobs':>5} {'off':>9} {'on':>9} "
        f"{'overhead':>9} {'spans':>6} {'bytes':>9}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for index, (n, n_targets) in enumerate(cases):
        keep = trace_out if index == len(cases) - 1 else None
        row = _run_case(n=n, n_targets=n_targets, repeats=repeats, keep_trace=keep)
        rows.append(row)
        print(
            f"{n:>7} {row['jobs']:>5} {row['seconds_off']:>9.3f} "
            f"{row['seconds_on']:>9.3f} {row['overhead_pct']:>8.2f}% "
            f"{row['spans']:>6} {row['trace_bytes']:>9}"
        )

    # The target is pinned at the largest case: per-run fixed costs (sink
    # creation, the first few dozen span writes) dominate sub-0.1 s sweeps
    # and amortise to nothing at working sizes — the smaller rows are
    # reported for transparency, not gated.
    headline = rows[-1]["overhead_pct"]
    print(
        f"\noverhead at n={rows[-1]['n']}: {headline:.2f}% "
        f"(target ≤ {_OVERHEAD_TARGET_PCT}%)"
    )
    if not smoke:
        assert headline <= _OVERHEAD_TARGET_PCT, (
            f"telemetry overhead {headline:.2f}% at n={rows[-1]['n']} "
            f"exceeds the {_OVERHEAD_TARGET_PCT}% target"
        )
    if trace_out is not None:
        print(f"kept largest-case trace in {trace_out}")

    payload = {
        "benchmark": "telemetry_overhead",
        "attack": "gradmaxsearch",
        "budget": _BUDGET,
        "candidates": _CANDIDATES,
        "edges_per_node": 4,
        "smoke": smoke,
        "overhead_target_pct": _OVERHEAD_TARGET_PCT,
        "headline_overhead_pct": round(headline, 2),
        "env": _benchenv.bench_env(),
        "results": rows,
        "notes": (
            "off/on repeats are interleaved and compared best-of against "
            "best-of; every comparison asserts bit-identical flip sets and "
            "scores between the traced and untraced runs. spans/trace_bytes "
            "describe the traced run's sink output. The <=3% target is "
            "gated on the largest case only: per-run fixed costs (sink "
            "creation, first span writes) dominate sub-0.1s sweeps."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--trace-out", type=Path, default=None)
    cli = parser.parse_args()
    run_telemetry_overhead(smoke=cli.smoke, trace_out=cli.trace_out)

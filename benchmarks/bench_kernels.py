"""Kernel-layer microbenchmarks: numpy reference vs compiled C backend.

Each row times one :data:`repro.kernels.KERNEL_REGISTRY` primitive in both
backends on the same inputs and asserts the outputs are **bit-identical**
before recording the speedup — a compiled kernel that drifts from its
numpy oracle fails the bench, it does not produce a fast-but-wrong number.
On top of the micro rows, an end-to-end BinarizedAttack runs numpy vs
compiled on a 10k-node payload graph and on the full 88.8k-node
blogcatalog store graph, asserting the flip sets match exactly.

Run::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI

Every run emits ``benchmarks/results/BENCH_kernels.json`` (smoke runs a
``_smoke`` sibling); the full-run artefact is committed.  Graphs come from
the ``blogcatalog-full`` store recipe (cache honours
``$REPRO_STORE_CACHE``), so the numbers describe the same heavy-tailed
degree distribution the attacks actually run on.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import gc
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.attacks import BinarizedAttack
from repro.graph.incremental import IncrementalEgonetFeatures
from repro.graph.sparse import egonet_features_sparse
from repro.kernels import compiled_available, kernel_table
from repro.oddball.surrogate import _scatter_pair_gradient
from repro.store import build_store

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_kernels.json"

_FULL_NODES = 88_800  # the blogcatalog-full recipe's node count
_BUDGET = 5
_TARGETS = 5
_ITERATIONS = 30
_LAMBDAS = (0.2, 0.05)


def _store_graph(n: int, cache_dir, seed: int = 7):
    """The blogcatalog-full recipe scaled to ``n`` nodes (cached store)."""
    return build_store(
        "blogcatalog-full", cache_dir=cache_dir, scale=n / _FULL_NODES,
        seed=seed,
    )


def _random_pairs(n: int, count: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=int(count * 1.1))
    cols = rng.integers(0, n, size=int(count * 1.1))
    keep = rows != cols
    rows, cols = rows[keep][:count], cols[keep][:count]
    return (
        np.minimum(rows, cols).astype(np.int64),
        np.maximum(rows, cols).astype(np.int64),
    )


def _row(kernel: str, shape: str, numpy_s: float, compiled_s: float) -> dict:
    return {
        "kernel": kernel,
        "shape": shape,
        "numpy_seconds": round(numpy_s, 4),
        "compiled_seconds": round(compiled_s, 4),
        "speedup": round(numpy_s / max(compiled_s, 1e-9), 1),
        "identical": True,  # asserted before the row is built
    }


# --------------------------------------------------------------------- #
# Microbenchmarks (one per KERNEL_REGISTRY entry)
# --------------------------------------------------------------------- #


def _bench_toggle_batch(csr, flip_count: int, seed: int) -> dict:
    """Apply-then-rollback a random flip batch through both backends.

    Timed regions run with the cyclic GC paused (like the BLAS thread
    pinning in ``_benchenv``): the numpy engine materialises tens of
    thousands of Python sets that stay alive for the cross-backend
    asserts, and letting collections triggered by those sets land inside
    the *other* backend's timing would charge one backend for the other's
    garbage.
    """
    rows, cols = _random_pairs(csr.shape[0], flip_count, seed)
    pairs = list(zip(rows.tolist(), cols.tolist()))

    ref = IncrementalEgonetFeatures(csr, kernels="numpy")
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    for u, v in pairs:
        ref.flip(u, v)
    mid_n, mid_e = ref._n_feature.copy(), ref._e_feature.copy()
    ref.rollback(len(pairs))
    numpy_s = time.perf_counter() - start
    gc.enable()

    fast = IncrementalEgonetFeatures(csr, kernels="compiled")
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    fast.flip_batch(pairs)
    fast_n, fast_e = fast._n_feature.copy(), fast._e_feature.copy()
    fast.rollback(len(pairs))
    compiled_s = time.perf_counter() - start
    gc.enable()

    assert np.array_equal(mid_n, fast_n) and np.array_equal(mid_e, fast_e)
    assert np.array_equal(ref._n_feature, fast._n_feature)
    assert np.array_equal(ref._e_feature, fast._e_feature)
    return _row(
        "toggle_batch", f"{len(pairs)} random flips + rollback",
        numpy_s, compiled_s,
    )


def _bench_pair_values(csr, count: int, seed: int) -> dict:
    """Batch edge membership: Python per-pair loop vs one C pass."""
    rows, cols = _random_pairs(csr.shape[0], count, seed)
    engine = IncrementalEgonetFeatures(csr, kernels="numpy")
    start = time.perf_counter()
    expected = engine.edge_values(rows, cols)
    numpy_s = time.perf_counter() - start

    table = kernel_table()
    start = time.perf_counter()
    got = table.pair_values(csr, rows, cols)
    compiled_s = time.perf_counter() - start

    assert np.array_equal(expected, got)
    return _row("pair_values", f"{rows.size} membership probes", numpy_s, compiled_s)


def _bench_scatter(csr, rows, cols, shape: str, seed: int) -> dict:
    """Candidate-pair gradient scatter, same (d_n, d_e) through both paths."""
    rng = np.random.default_rng(seed)
    n = csr.shape[0]
    d_n = rng.standard_normal(n)
    d_e = rng.standard_normal(n)

    start = time.perf_counter()
    expected = _scatter_pair_gradient(csr, d_n, d_e, rows, cols)
    numpy_s = time.perf_counter() - start

    table = kernel_table()
    start = time.perf_counter()
    got = table.scatter_pair_gradient(csr, d_n, d_e, rows, cols)
    compiled_s = time.perf_counter() - start

    assert np.array_equal(expected, got)
    return _row("scatter_gradient", shape, numpy_s, compiled_s)


def _bench_triangle_counts(csr) -> dict:
    """Clean-feature triangle term: blocked spgemm vs one C merge pass."""
    start = time.perf_counter()
    n_np, e_np = egonet_features_sparse(csr, kernels="numpy")
    numpy_s = time.perf_counter() - start

    start = time.perf_counter()
    n_c, e_c = egonet_features_sparse(csr, kernels="compiled")
    compiled_s = time.perf_counter() - start

    assert np.array_equal(n_np, n_c) and np.array_equal(e_np, e_c)
    return _row(
        "triangle_counts", f"full (N, E) pass, n={csr.shape[0]}",
        numpy_s, compiled_s,
    )


# --------------------------------------------------------------------- #
# End-to-end BinarizedAttack parity + timing
# --------------------------------------------------------------------- #


def _attack(kernels: str) -> BinarizedAttack:
    return BinarizedAttack(
        iterations=_ITERATIONS, lambdas=_LAMBDAS, backend="sparse",
        kernels=kernels,
    )


def _bench_attack(graph, targets, label: str) -> dict:
    gc.collect()  # don't charge either backend for the other's garbage
    start = time.perf_counter()
    ref = _attack("numpy").attack(
        graph, targets, _BUDGET, candidates="target_incident"
    )
    numpy_s = time.perf_counter() - start
    gc.collect()
    start = time.perf_counter()
    fast = _attack("compiled").attack(
        graph, targets, _BUDGET, candidates="target_incident"
    )
    compiled_s = time.perf_counter() - start
    assert ref.flips_by_budget == fast.flips_by_budget, f"flip mismatch: {label}"
    assert ref.surrogate_by_budget == fast.surrogate_by_budget
    row = _row("binarized_attack_end_to_end", label, numpy_s, compiled_s)
    row["flips"] = len(ref.flips())
    row["flip_sets_identical"] = True
    return row


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #

pytestmark = pytest.mark.skipif(
    not compiled_available(),
    reason="no C toolchain/cffi on this host; compiled backend unavailable",
)


@pytest.fixture(scope="module")
def small_store(tmp_path_factory):
    return _store_graph(1500, tmp_path_factory.mktemp("kernel-store"))


def test_bench_kernel_micro_smoke(benchmark, small_store):
    csr = small_store.csr()

    def run():
        rows, cols = _random_pairs(csr.shape[0], 300, seed=3)
        return [
            _bench_toggle_batch(csr, flip_count=300, seed=1),
            _bench_pair_values(csr, count=2000, seed=2),
            _bench_scatter(csr, rows, cols, "300 random pairs", seed=4),
            _bench_triangle_counts(csr),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert all(row["identical"] for row in rows)


def test_bench_kernel_attack_smoke(benchmark, small_store):
    targets = small_store.top_targets(3)
    row = benchmark.pedantic(
        lambda: _bench_attack(small_store.csr(), targets, "smoke store"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert row["flip_sets_identical"]


# --------------------------------------------------------------------- #
# The committed artefact
# --------------------------------------------------------------------- #


def run_kernel_bench(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Micro + end-to-end numpy-vs-compiled study; print a table, emit JSON.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_kernels_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    cache_dir = os.environ.get("REPRO_STORE_CACHE", ".repro-store-cache")
    micro_n = 2000 if smoke else _FULL_NODES
    payload_n = 2000 if smoke else 10_000
    flip_count = 2000 if smoke else 20_000
    probe_count = 20_000 if smoke else 200_000
    spread_pairs = 500 if smoke else 2000
    incident_partners = 500 if smoke else 2000

    store = _store_graph(micro_n, cache_dir)
    csr = store.csr()
    n = csr.shape[0]
    print(
        f"Kernel backends on the blogcatalog-full recipe at n={n} "
        f"(m={store.number_of_edges}); numpy reference vs compiled C, "
        "outputs asserted bit-identical per row"
    )
    print()

    rows = [
        _bench_toggle_batch(csr, flip_count=flip_count, seed=1),
        _bench_pair_values(csr, count=probe_count, seed=2),
    ]
    # Spread-hub shape: candidates scattered over many distinct endpoints —
    # the adaptive/two_hop candidate regime, where the numpy path pays two
    # O(m) mat-vecs per distinct hub.
    s_rows, s_cols = _random_pairs(n, spread_pairs, seed=3)
    rows.append(
        _bench_scatter(
            csr, s_rows, s_cols,
            f"{s_rows.size} pairs, spread hubs", seed=4,
        )
    )
    # Few-hub shape: every pair shares one of a handful of target hubs —
    # the target_incident regime the numpy mat-vec grouping was built for
    # (its best case, so this speedup is the honest lower bound).
    targets = store.top_targets(8)
    rng = np.random.default_rng(5)
    hub = np.repeat(np.asarray(targets, dtype=np.int64), incident_partners)
    partner = rng.integers(0, n, size=hub.size)
    keep = partner != hub
    i_rows = np.minimum(hub[keep], partner[keep])
    i_cols = np.maximum(hub[keep], partner[keep])
    rows.append(
        _bench_scatter(
            csr, i_rows.astype(np.int64), i_cols.astype(np.int64),
            f"{i_rows.size} pairs, {len(targets)} target hubs", seed=6,
        )
    )
    rows.append(_bench_triangle_counts(csr))

    # End-to-end: payload-graph attack (arrays in memory, store tags
    # dropped) and, on full runs, the memory-mapped store graph itself.
    payload_store = _store_graph(payload_n, cache_dir)
    rows.append(
        _bench_attack(
            payload_store.detached_csr(),
            payload_store.top_targets(_TARGETS),
            f"n={payload_store.number_of_nodes} payload graph",
        )
    )
    if not smoke:
        rows.append(
            _bench_attack(
                store,
                store.top_targets(_TARGETS),
                f"n={n} store graph (mmap)",
            )
        )

    header = (
        f"{'kernel':>28} {'shape':>36} {'numpy':>9} {'compiled':>9} {'x':>7}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['kernel']:>28} {row['shape']:>36} "
            f"{row['numpy_seconds']:>9.4f} {row['compiled_seconds']:>9.4f} "
            f"{row['speedup']:>6.1f}x"
        )

    payload = {
        "benchmark": "kernel_backends",
        "graph_recipe": "blogcatalog-full",
        "micro_n": n,
        "attack": {
            "name": "binarizedattack",
            "budget": _BUDGET,
            "targets": _TARGETS,
            "iterations": _ITERATIONS,
            "lambdas": list(_LAMBDAS),
            "candidates": "target_incident",
        },
        "smoke": smoke,
        "env": _benchenv.bench_env(),
        "results": rows,
        "notes": (
            "Every row asserts bit-identical outputs between the numpy "
            "reference and the compiled backend before timing is recorded "
            "(features, gradients, flip sets). toggle_batch times apply + "
            "full rollback. The two scatter shapes bracket the candidate "
            "regimes: spread hubs (adaptive/two_hop) is the compiled "
            "backend's headline win because the numpy path pays two O(m) "
            "mat-vecs per distinct hub; few-hub target_incident is the "
            "numpy path's best case and bounds the speedup from below."
        ),
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    run_kernel_bench(smoke="--smoke" in sys.argv[1:])

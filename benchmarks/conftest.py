"""Benchmark-suite configuration.

Every paper artefact (table/figure) has a bench that regenerates it at a
reduced scale and prints the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Scales are chosen so the full suite completes in minutes; pass
``--bench-scale=ci`` (default) or ``--bench-scale=smoke`` to trade fidelity
for speed.  The ``paper`` scale regenerates full-size graphs and is meant
for overnight runs.
"""

from __future__ import annotations

import _benchenv  # noqa: F401  (import-time side effect: pins BLAS/OpenMP
#                   thread pools to 1 before numpy loads, so every bench
#                   number below is single-thread-comparable)
import pytest

from repro.experiments.config import CI, PAPER, SMOKE

_SCALES = {"paper": PAPER, "ci": CI, "smoke": SMOKE}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        default="smoke",
        choices=sorted(_SCALES),
        help="experiment scale preset used by the paper-artefact benches",
    )


@pytest.fixture(scope="session")
def bench_scale(request):
    """The Scale preset selected on the command line."""
    return _SCALES[request.config.getoption("--bench-scale")]


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return 7


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)

"""Ablation bench: all implemented defences side by side (extension).

Fig. 10 evaluates Huber and RANSAC; the reproduction adds the low-rank SVD
graph-purification defence (related-work family [24]).  This bench puts the
three on the same attack instance and prints a defence league table.
"""


from repro.attacks import BinarizedAttack
from repro.graph.datasets import load_dataset
from repro.graph.features import egonet_features
from repro.oddball.defense import purified_scores
from repro.oddball.detector import OddBall
from repro.oddball.robust import fit_with_estimator
from repro.oddball.scores import score_from_features
from repro.utils.rng import SeedSequenceFactory


def _estimator_scores(adjacency, estimator, rng):
    n_feature, e_feature = egonet_features(adjacency)
    fit = fit_with_estimator(n_feature, e_feature, estimator=estimator, rng=rng)
    return score_from_features(n_feature, e_feature, fit)


def test_bench_defense_league(benchmark, bench_scale, bench_seed):
    seeds = SeedSequenceFactory(bench_seed)
    dataset = load_dataset(
        "bitcoin-alpha", rng=seeds.generator("dataset-bitcoin-alpha"),
        scale=bench_scale.graph_scale,
    )
    graph = dataset.graph
    adjacency = graph.adjacency
    report = OddBall().analyze(graph)
    rng = seeds.generator("defense-targets")
    targets = sorted(
        int(v) for v in rng.choice(report.top_k(min(50, dataset.n_nodes)), 5, replace=False)
    )
    budget = max(bench_scale.budgets_for(graph.number_of_edges)[-1], 6)
    purify_rank = max(dataset.n_nodes // 4, 8)

    def run():
        result = BinarizedAttack(iterations=bench_scale.attack_iterations).attack(
            graph, targets, budget
        )
        poisoned = result.poisoned()
        taus = {}
        for estimator in ("ols", "huber", "ransac"):
            est_rng = seeds.generator(f"defense-{estimator}")
            before = _estimator_scores(adjacency, estimator, est_rng)[targets].sum()
            after = _estimator_scores(poisoned, estimator, est_rng)[targets].sum()
            taus[estimator] = float((before - after) / max(before, 1e-9))
        before = purified_scores(adjacency, rank=purify_rank)[targets].sum()
        after = purified_scores(poisoned, rank=purify_rank)[targets].sum()
        taus["svd-purify"] = float((before - after) / max(before, 1e-9))
        return taus

    taus = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ndefence league (lower tau = better defence): {taus}")
    # the attack must succeed without defence ...
    assert taus["ols"] > 0.3
    # ... and no defence should flip the sign of the attack's effect wildly
    for name, tau in taus.items():
        assert -0.5 <= tau <= 1.0, (name, tau)

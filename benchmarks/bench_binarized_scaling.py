"""BinarizedAttack scaling: dense autograd engine vs sparse-incremental engine.

The paper's headline algorithm evaluates a discrete forward pass per PGD
iteration.  The dense engine runs it as a full O(n³) autograd pipeline; the
sparse engine applies the iterate's flip set to incrementally-maintained
egonet features, scores in O(n), scatters the straight-through gradient onto
the candidate pairs only, and rolls the flips back — so one λ-sweep runs at
O(Σ deg + n + |C|) per iteration and a budget-5 attack on a sparse
10 000-node graph finishes in well under a second where the dense engine is
infeasible (an 800 MB adjacency plus minutes of O(n³) matmuls per iterate).

Run the scaling study directly::

    PYTHONPATH=src python benchmarks/bench_binarized_scaling.py            # full
    PYTHONPATH=src python benchmarks/bench_binarized_scaling.py --smoke   # CI

Every run emits the machine-readable artefact
``benchmarks/results/BENCH_binarized_scaling.json`` (rows of
``{n, backend, candidates, seconds, flips, loss_before, loss_after}``) so a
regression in the sparse forward is visible as data, not prose; the full-run
artefact is committed.  The pytest entries double as CI smoke: both engines
must complete end-to-end and the sparse run must reproduce its loss
bookkeeping on the materialised poisoned graph.
"""

import _benchenv  # first: pins BLAS/OpenMP threads before numpy loads

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import BinarizedAttack
from repro.graph.sparse import anomaly_scores_sparse
from repro.oddball.surrogate import surrogate_loss_numpy

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_binarized_scaling.json"

_BUDGET = 5
_TARGETS = 5
_ITERATIONS = 30
_LAMBDAS = (0.2, 0.05)


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


def _attack_instance(n: int, seed: int = 0):
    """A mid-density sparse graph plus its top-scoring OddBall targets."""
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    scores = anomaly_scores_sparse(graph)
    targets = np.argsort(-scores, kind="stable")[:_TARGETS].tolist()
    return graph, targets


def _attack(backend: str) -> BinarizedAttack:
    return BinarizedAttack(
        iterations=_ITERATIONS, lambdas=_LAMBDAS, backend=backend
    )


def _run_case(graph, targets, backend: str, candidates: str) -> dict:
    adjacency = graph.toarray() if backend == "dense" else graph
    start = time.perf_counter()
    result = _attack(backend).attack(
        adjacency, targets, _BUDGET, candidates=candidates
    )
    elapsed = time.perf_counter() - start
    return {
        "n": int(graph.shape[0]),
        "backend": backend,
        "candidates": candidates,
        "seconds": round(elapsed, 4),
        "flips": len(result.flips()),
        "loss_before": result.surrogate_by_budget[0],
        "loss_after": result.surrogate_by_budget[_BUDGET],
    }


# --------------------------------------------------------------------- #
# CI smoke (pytest entries)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def attack_instance():
    return _attack_instance(n=300)


def test_bench_binarized_dense_engine(benchmark, attack_instance):
    graph, targets = attack_instance
    result = benchmark.pedantic(
        lambda: _attack("dense").attack(
            graph.toarray(), targets, _BUDGET, candidates="target_incident"
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.flips()) <= _BUDGET
    assert result.metadata["backend"] == "dense"


def test_bench_binarized_sparse_engine(benchmark, attack_instance):
    graph, targets = attack_instance
    result = benchmark.pedantic(
        lambda: _attack("sparse").attack(
            graph, targets, _BUDGET, candidates="target_incident"
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.flips()) <= _BUDGET
    assert result.metadata["backend"] == "sparse"
    # The recorded losses must be reproducible on the materialised graph —
    # this is what "the sparse forward cannot silently regress" means.
    for budget, loss in result.surrogate_by_budget.items():
        assert loss == pytest.approx(
            surrogate_loss_numpy(result.poisoned(budget), targets), rel=1e-9
        )


def test_bench_engines_pick_same_flips(attack_instance):
    graph, targets = attack_instance
    dense = _attack("dense").attack(
        graph.toarray(), targets, _BUDGET, candidates="target_incident"
    )
    fast = _attack("sparse").attack(
        graph, targets, _BUDGET, candidates="target_incident"
    )
    assert dense.flips_by_budget == fast.flips_by_budget


# --------------------------------------------------------------------- #
# Scaling study (the committed artefact)
# --------------------------------------------------------------------- #


def run_binarized_scaling(smoke: bool = False, output: "Path | None" = None) -> dict:
    """Time both engines across sizes; print a table and emit JSON.

    Smoke runs write to a ``_smoke`` sibling so CI never clobbers the
    committed full-run artefact.
    """
    if output is None:
        output = (
            RESULTS_PATH.with_name("BENCH_binarized_scaling_smoke.json")
            if smoke
            else RESULTS_PATH
        )
    dense_sizes = [200] if smoke else [200, 400, 800]
    sparse_sizes = [200, 1000] if smoke else [200, 400, 800, 2000, 5000, 10000]
    rows = []
    print("BinarizedAttack scaling: dense engine vs sparse-incremental engine")
    print(
        f"(budget={_BUDGET}, {_TARGETS} targets, candidates=target_incident, "
        f"iterations={_ITERATIONS}, |Λ|={len(_LAMBDAS)}, m ≈ 4n; seconds)"
    )
    print()
    header = f"{'n':>7} {'backend':>8} {'seconds':>9} {'flips':>6} {'loss drop':>18}"
    print(header)
    print("-" * len(header))
    for n in sorted(set(dense_sizes) | set(sparse_sizes)):
        graph, targets = _attack_instance(n)
        for backend, sizes in (("dense", dense_sizes), ("sparse", sparse_sizes)):
            if n not in sizes:
                continue
            row = _run_case(graph, targets, backend, "target_incident")
            rows.append(row)
            drop = f"{row['loss_before']:.2f} → {row['loss_after']:.2f}"
            print(
                f"{n:>7} {backend:>8} {row['seconds']:>9.3f} {row['flips']:>6} "
                f"{drop:>18}"
            )
    print()
    print("dense engine skipped above 800 nodes: every PGD iteration is a full")
    print("O(n³) autograd pass (n=10000 would need an 800 MB adjacency and")
    print("minutes per iterate); the sparse engine runs it in O(Σ deg + n + |C|).")
    payload = {
        "benchmark": "binarized_scaling",
        "budget": _BUDGET,
        "targets": _TARGETS,
        "iterations": _ITERATIONS,
        "lambdas": list(_LAMBDAS),
        "candidates": "target_incident",
        "edges_per_node": 4,
        "smoke": smoke,
        "env": _benchenv.bench_env(),
        "results": rows,
    }
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    return payload


if __name__ == "__main__":
    run_binarized_scaling(smoke="--smoke" in sys.argv[1:])

"""Bench: regenerate Fig. 4 (attack effectiveness, all eight panels).

Paper shape asserted: BinarizedAttack is the strongest method at the
largest budget on (the majority of) panels, and ContinuousA is the weakest/
erratic one.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig4_effectiveness


def test_bench_fig4_all_panels(benchmark, bench_scale, bench_seed):
    payload = run_once(
        benchmark, fig4_effectiveness.run, scale=bench_scale, seed=bench_seed
    )
    print()
    print(fig4_effectiveness.format_results(payload))

    assert len(payload["panels"]) == 8
    binarized_wins = 0
    continuous_losses = 0
    for panel in payload["panels"]:
        tau = panel["tau_mean"]
        final = {name: series[-1] for name, series in tau.items()}
        if final["binarizedattack"] >= final["gradmaxsearch"] - 0.05:
            binarized_wins += 1
        if final["continuousa"] <= max(final["binarizedattack"], final["gradmaxsearch"]):
            continuous_losses += 1
        # attacks achieve substantial evasion with a few % of edges
        assert max(final.values()) > 0.3
    # the paper's headline ordering holds on most panels
    assert binarized_wins >= 5
    assert continuous_losses >= 6

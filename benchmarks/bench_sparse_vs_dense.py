"""Throughput bench: sparse vs dense egonet-feature extraction.

The sparse path exists so the *full-size* real graphs (e.g. Blogcatalog:
88.8k nodes / 2.1M edges) can be scored during pre-processing; this bench
documents the crossover on a mid-size sparse graph.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.features import egonet_features
from repro.graph.sparse import egonet_features_sparse


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


@pytest.fixture(scope="module")
def sparse_graph():
    return _random_sparse_graph(n=3000, m=12000, seed=0)


def test_bench_egonet_sparse(benchmark, sparse_graph):
    n_feature, e_feature = benchmark(egonet_features_sparse, sparse_graph)
    assert len(n_feature) == 3000
    assert (e_feature >= n_feature - 1e-9).all()


def test_bench_egonet_dense_same_graph(benchmark, sparse_graph):
    dense = sparse_graph.toarray()
    n_feature, e_feature = benchmark(egonet_features, dense)
    assert len(n_feature) == 3000
    # the two paths agree exactly
    n_sparse, e_sparse = egonet_features_sparse(sparse_graph)
    np.testing.assert_allclose(n_feature, n_sparse)
    np.testing.assert_allclose(e_feature, e_sparse)

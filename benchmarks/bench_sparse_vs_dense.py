"""Throughput bench: sparse vs dense kernels, and attack-engine scaling.

The sparse path exists so the *full-size* real graphs (e.g. Blogcatalog:
88.8k nodes / 2.1M edges) can be scored during pre-processing; the first
half of this bench documents the crossover on a mid-size sparse graph.

The second half benchmarks the candidate-set attack engine: GradMaxSearch
with ``candidates="target_incident"`` maintains egonet features
incrementally and scatters gradients onto |C| ≪ n² pairs, turning each
greedy step from O(n³) into O(m + |C|).  Run the scaling study directly::

    PYTHONPATH=src python benchmarks/bench_sparse_vs_dense.py            # full
    PYTHONPATH=src python benchmarks/bench_sparse_vs_dense.py --smoke   # CI

The full study times the dense engine up to 2000 nodes (where it already
takes ~10 s per attack) and the candidate engine up to 10 000 nodes —
a scale at which the dense engine is infeasible (it would materialise an
800 MB adjacency and run minutes of O(n³) matmuls per flip).  Output of a
full run is committed at ``benchmarks/results/attack_scaling.txt``.
"""

import sys
import time

import numpy as np
import pytest
from scipy import sparse

from repro.attacks import GradMaxSearch
from repro.graph.features import egonet_features
from repro.graph.sparse import anomaly_scores_sparse, egonet_features_sparse


def _random_sparse_graph(n: int, m: int, seed: int) -> sparse.csr_matrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    mask = rows != cols
    matrix = sparse.csr_matrix(
        (np.ones(mask.sum()), (rows[mask], cols[mask])), shape=(n, n)
    )
    matrix = ((matrix + matrix.T) > 0).astype(np.float64)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


@pytest.fixture(scope="module")
def sparse_graph():
    return _random_sparse_graph(n=3000, m=12000, seed=0)


def test_bench_egonet_sparse(benchmark, sparse_graph):
    n_feature, e_feature = benchmark(egonet_features_sparse, sparse_graph)
    assert len(n_feature) == 3000
    assert (e_feature >= n_feature - 1e-9).all()


def test_bench_egonet_dense_same_graph(benchmark, sparse_graph):
    dense = sparse_graph.toarray()
    n_feature, e_feature = benchmark(egonet_features, dense)
    assert len(n_feature) == 3000
    # the two paths agree exactly
    n_sparse, e_sparse = egonet_features_sparse(sparse_graph)
    np.testing.assert_allclose(n_feature, n_sparse)
    np.testing.assert_allclose(e_feature, e_sparse)


# --------------------------------------------------------------------- #
# Attack-engine scaling
# --------------------------------------------------------------------- #

_ATTACK_BUDGET = 8
_ATTACK_TARGETS = 5


def _attack_instance(n: int, seed: int = 0):
    """A mid-density sparse graph plus its top-scoring OddBall targets."""
    graph = _random_sparse_graph(n=n, m=4 * n, seed=seed)
    scores = anomaly_scores_sparse(graph)
    targets = np.argsort(-scores, kind="stable")[:_ATTACK_TARGETS].tolist()
    return graph, targets


@pytest.fixture(scope="module")
def attack_instance():
    return _attack_instance(n=600)


def test_bench_gradmax_dense_engine(benchmark, attack_instance):
    graph, targets = attack_instance
    dense = graph.toarray()
    result = benchmark.pedantic(
        lambda: GradMaxSearch().attack(dense, targets, _ATTACK_BUDGET),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.flips()) <= _ATTACK_BUDGET


def test_bench_gradmax_candidate_engine(benchmark, attack_instance):
    graph, targets = attack_instance
    result = benchmark.pedantic(
        lambda: GradMaxSearch().attack(
            graph, targets, _ATTACK_BUDGET, candidates="target_incident"
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(result.flips()) <= _ATTACK_BUDGET
    assert result.metadata["engine"] == "candidates"


def _time_attack(graph, targets, **attack_kwargs) -> "tuple[float, int]":
    start = time.perf_counter()
    result = GradMaxSearch().attack(
        graph, targets, _ATTACK_BUDGET, **attack_kwargs
    )
    return time.perf_counter() - start, len(result.flips())


def run_attack_scaling(smoke: bool = False) -> None:
    """Print the dense-vs-candidate scaling table (the committed artefact)."""
    dense_sizes = [500, 1000] if smoke else [500, 1000, 2000]
    candidate_only_sizes = [] if smoke else [5000, 10000]
    print("GradMaxSearch scaling: dense engine vs candidate engine")
    print(f"(budget={_ATTACK_BUDGET} flips, {_ATTACK_TARGETS} targets, "
          f"m ≈ 4n edges; times in seconds)")
    print()
    header = f"{'n':>7} {'|C|':>9} {'dense':>10} {'candidate':>10} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for n in dense_sizes:
        graph, targets = _attack_instance(n)
        t_dense, _ = _time_attack(graph.toarray(), targets)
        t_cand, _ = _time_attack(graph, targets, candidates="target_incident")
        n_candidates = _ATTACK_TARGETS * (n - 1) - _ATTACK_TARGETS * (_ATTACK_TARGETS - 1) // 2
        print(f"{n:>7} {n_candidates:>9} {t_dense:>10.3f} {t_cand:>10.3f} "
              f"{t_dense / t_cand:>8.1f}x")
    for n in candidate_only_sizes:
        graph, targets = _attack_instance(n)
        t_cand, _ = _time_attack(graph, targets, candidates="target_incident")
        n_candidates = _ATTACK_TARGETS * (n - 1) - _ATTACK_TARGETS * (_ATTACK_TARGETS - 1) // 2
        print(f"{n:>7} {n_candidates:>9} {'(skipped)':>10} {t_cand:>10.3f} "
              f"{'—':>9}")
    if candidate_only_sizes:
        print()
        print("dense engine skipped above 2000 nodes: it densifies the graph")
        print("(n=10000 → 800 MB) and runs a full O(n³) autograd pass per flip.")


if __name__ == "__main__":
    run_attack_scaling(smoke="--smoke" in sys.argv[1:])

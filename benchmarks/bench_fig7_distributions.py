"""Bench: regenerate Fig. 7 (ego-feature densities, clean vs poisoned)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_distributions


def test_bench_fig7(benchmark, bench_scale, bench_seed):
    payload = run_once(benchmark, fig7_distributions.run, scale=bench_scale, seed=bench_seed)
    print()
    print(fig7_distributions.format_results(payload))
    for feature in ("N", "E"):
        summary = payload["summary"][feature]
        # distributions barely move — the unnoticeability claim
        assert summary["total_variation"] < 0.35
        relative_mean_shift = abs(
            summary["mean_poisoned"] - summary["mean_clean"]
        ) / max(summary["mean_clean"], 1e-9)
        assert relative_mean_shift < 0.2

"""Fraud-ring concealment on a trust network (Bitcoin-Alpha-style).

A collusion ring in a who-trusts-whom network forms a near-clique — the
other anomalous egonet shape OddBall flags (Fig. 2a).  This example compares
all three attack methods of the paper at equal budgets as the ring tries to
stay below the detector's radar, and shows the budget/evasion trade-off.

Run:  python examples/fraud_ring.py
"""

import numpy as np

from repro.attacks import BinarizedAttack, ContinuousA, GradMaxSearch
from repro.graph import inject_near_clique, load_dataset
from repro.oddball import OddBall


def main() -> None:
    dataset = load_dataset("bitcoin-alpha", rng=3, scale=0.25)
    graph = dataset.graph

    # plant a fresh 10-member collusion ring around one trader
    ring_leader = int(np.argsort(graph.degrees())[len(graph.degrees()) // 2])
    inject_near_clique(graph, ring_leader, clique_size=10, density=0.95, rng=5)
    ring = [ring_leader] + [int(v) for v in graph.neighbors(ring_leader)[:4]]

    detector = OddBall()
    report = detector.analyze(graph)
    print(f"trust graph: {graph.number_of_nodes} traders, {graph.number_of_edges} edges")
    print(f"fraud ring {ring}: leader rank = {report.rank_of(ring_leader)}, "
          f"ring AScore sum = {report.scores[ring].sum():.2f}")

    budget = 12
    print(f"\nattack comparison at budget {budget} (edge flips):")
    attacks = {
        "GradMaxSearch": GradMaxSearch(),
        "ContinuousA": ContinuousA(max_iter=120),
        "BinarizedAttack": BinarizedAttack(iterations=120),
    }
    for name, attack in attacks.items():
        result = attack.attack(graph, ring, budget)
        tau = result.score_decrease(ring)
        adds = sum(1 for u, v in result.flips() if not graph.has_edge(u, v))
        deletes = len(result.flips()) - adds
        print(f"  {name:16s} tau = {tau:6.1%}  (+{adds} edges / -{deletes} edges)")

    print("\nbudget sweep (BinarizedAttack):")
    result = BinarizedAttack(iterations=120).attack(graph, ring, budget)
    for b in range(0, budget + 1, 3):
        print(f"  B={b:2d}: ring AScore decrease = {result.score_decrease(ring, b):6.1%}")


if __name__ == "__main__":
    main()

"""Botnet C&C evasion — the paper's motivating threat model (Fig. 3).

A defender reconstructs a communication graph by querying pairs of hosts
("did A talk to B?").  A Command-&-Control operator sits on the channel and
tampers with a bounded number of query answers, so the observed graph is a
structural poison of the ground truth.  The C&C hub — a near-star egonet that
OddBall would flag instantly — evades detection.

Run:  python examples/botnet_evasion.py
"""

from repro.attacks import BinarizedAttack
from repro.graph import (
    Defender,
    Environment,
    ManInTheMiddleAttacker,
    erdos_renyi,
    inject_near_star,
)
from repro.oddball import OddBall


def main() -> None:
    # --- ground truth: benign traffic + a C&C hub coordinating its bots ----
    ground_truth = erdos_renyi(220, 0.03, rng=42)
    command_center = 0
    inject_near_star(ground_truth, command_center, n_leaves=45, rng=1)
    print(
        f"ground truth: {ground_truth.number_of_nodes} hosts, "
        f"{ground_truth.number_of_edges} flows; C&C degree = "
        f"{ground_truth.degree(command_center)}"
    )

    # --- honest data collection: the defender sees the truth ---------------
    detector = OddBall()
    honest = Defender(n_nodes=ground_truth.number_of_nodes).collect(
        Environment(ground_truth)
    )
    report = detector.analyze(honest)
    print(
        f"honest collection: C&C anomaly rank = {report.rank_of(command_center)} "
        f"(score {report.scores[command_center]:.2f}) -> DETECTED"
    )

    # --- the C&C operator plans a structural poison -------------------------
    budget = 14
    attack = BinarizedAttack(iterations=120)
    plan = attack.attack(ground_truth, [command_center], budget)
    print(f"attack plan: tamper with {len(plan.flips())} query answers (budget {budget})")

    # --- tampered data collection ------------------------------------------
    channel = ManInTheMiddleAttacker(Environment(ground_truth), plan.flips(), budget=budget)
    observed = Defender(n_nodes=ground_truth.number_of_nodes).collect(channel)
    print(f"tampered answers observed by defender: {channel.tamper_count()}")

    poisoned_report = detector.analyze(observed)
    rank = poisoned_report.rank_of(command_center)
    score = poisoned_report.scores[command_center]
    print(f"poisoned collection: C&C anomaly rank = {rank} (score {score:.2f})")
    if rank > 20:
        print("-> the C&C hub slipped out of the defender's top-20 watchlist")


if __name__ == "__main__":
    main()

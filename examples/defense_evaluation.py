"""Countermeasures: OddBall with robust regression under attack (Section VII).

The defender swaps the OLS power-law fit for a Huber M-estimator or RANSAC.
Both blunt the attack a little — and the example also shows the *adaptive*
attacker (an extension beyond the paper): re-optimising the poison while the
defence is in place recovers part of the lost effectiveness.

Run:  python examples/defense_evaluation.py
"""

import numpy as np

from repro.attacks import BinarizedAttack
from repro.graph import load_dataset
from repro.graph.features import egonet_features
from repro.oddball import OddBall, fit_with_estimator, score_from_features


def scores_under(adjacency: np.ndarray, estimator: str, rng=0) -> np.ndarray:
    n_feature, e_feature = egonet_features(adjacency)
    fit = fit_with_estimator(n_feature, e_feature, estimator=estimator, rng=rng)
    return score_from_features(n_feature, e_feature, fit)


def main() -> None:
    dataset = load_dataset("bitcoin-alpha", rng=7, scale=0.25)
    graph = dataset.graph
    adjacency = graph.adjacency

    report = OddBall().analyze(graph)
    rng = np.random.default_rng(1)
    targets = sorted(int(v) for v in rng.choice(report.top_k(50), size=5, replace=False))
    budget = 12
    print(f"targets {targets}, budget {budget}\n")

    result = BinarizedAttack(iterations=120).attack(graph, targets, budget)
    poisoned = result.poisoned()

    print(f"{'estimator':>10} {'S_T clean':>10} {'S_T poisoned':>13} {'tau':>7}")
    for estimator in ("ols", "huber", "ransac"):
        before = scores_under(adjacency, estimator)[targets].sum()
        after = scores_under(poisoned, estimator)[targets].sum()
        tau = (before - after) / before
        print(f"{estimator:>10} {before:>10.3f} {after:>13.3f} {tau:>6.1%}")

    print(
        "\nreading: Huber/RANSAC re-estimation mitigates the attack only "
        "slightly — BinarizedAttack remains effective (the paper's Fig. 10)."
    )

    # ---- extension: adaptive attacker against the robust defender ---------
    # The robust fit is not differentiable in closed form, so the adaptive
    # attacker keeps the OLS surrogate for gradients but *selects* among its
    # recorded candidates by the defender's actual (robust) score.
    print("\nadaptive attacker vs Huber defence:")
    best_tau, best_b = -np.inf, 0
    before_huber = scores_under(adjacency, "huber")[targets].sum()
    for b in result.budgets:
        after_huber = scores_under(result.poisoned(b), "huber")[targets].sum()
        tau = (before_huber - after_huber) / before_huber
        if tau > best_tau:
            best_tau, best_b = tau, b
    print(f"  best budget against Huber: B={best_b}, tau = {best_tau:.1%}")


if __name__ == "__main__":
    main()

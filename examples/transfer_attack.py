"""Black-box transfer attack against representation-learning GAD systems.

The poison is optimised against OddBall only; GAL (GCN + graph anomaly loss)
and ReFeX (recursive structural features) never reveal anything to the
attacker — yet their predictions on the target nodes degrade (Section VI).

Run:  python examples/transfer_attack.py
"""

from repro.attacks import BinarizedAttack
from repro.gad import TransferAttackPipeline
from repro.graph import load_dataset


def main() -> None:
    dataset = load_dataset("wikivote", rng=7, scale=0.25)
    print(f"graph: {dataset.n_nodes} nodes, {dataset.n_edges} edges")

    for system in ("gal", "refex"):
        print(f"\n=== victim: {system.upper()} (black-box) ===")
        pipeline = TransferAttackPipeline(
            system=system,
            seed=11,
            gal_kwargs={"epochs": 60},
            mlp_kwargs={"epochs": 150},
        )
        attack = BinarizedAttack(iterations=100)
        budgets = [0, 5, 10, 20]
        outcome = pipeline.run(dataset.graph, attack, budgets, max_targets=8)
        print(f"targets (test nodes predicted anomalous): {outcome.targets.tolist()}")
        print(f"{'B':>4} {'edges%':>7} {'AUC':>6} {'F1':>6} {'deltaB%':>8}")
        for row in outcome.rows:
            print(
                f"{row.budget:>4} {row.edges_changed_pct:>6.2f}% "
                f"{row.auc:>6.3f} {row.f1:>6.3f} {row.delta_b_pct:>7.2f}%"
            )
        print(
            "reading: global AUC/F1 degrade only mildly (the attack stays "
            "unnoticeable), while the targets' soft labels drop."
        )


if __name__ == "__main__":
    main()

"""Quickstart: detect anomalies with OddBall, then hide them with
BinarizedAttack — and scale the attack with candidate sets.

Run:  python examples/quickstart.py
"""

from repro.attacks import BinarizedAttack, CandidateSet, GradMaxSearch
from repro.graph import load_dataset
from repro.oddball import OddBall


def main() -> None:
    # 1. Load a graph (a stand-in for the paper's Bitcoin-Alpha sample).
    dataset = load_dataset("bitcoin-alpha", rng=7, scale=0.25)
    graph = dataset.graph
    print(f"graph: {graph.number_of_nodes} nodes, {graph.number_of_edges} edges")

    # 2. Run the OddBall detector: egonet features + power-law regression.
    detector = OddBall()
    report = detector.analyze(graph)
    print(
        f"fitted Egonet Density Power Law: "
        f"lnE = {report.fit.beta0:.3f} + {report.fit.beta1:.3f} lnN"
    )

    # 3. The attacker picks the three most anomalous nodes as targets.
    targets = report.top_k(3).tolist()
    score_before = report.scores[targets].sum()
    print(f"targets {targets}: total AScore before attack = {score_before:.3f}")

    # 4. Poison the graph with BinarizedAttack (budget: 8 edge flips).
    attack = BinarizedAttack(iterations=100)
    result = attack.attack(graph, targets, budget=8)
    print(f"attack flipped {len(result.flips())} edges: {result.flips()}")

    # 5. The defender re-runs OddBall on the poisoned graph.
    score_after = detector.scores(result.poisoned())[targets].sum()
    tau = (score_before - score_after) / score_before
    print(f"total AScore after attack = {score_after:.3f}  (decrease {tau:.1%})")

    ranks = [OddBall().analyze(result.poisoned_graph()).rank_of(t) for t in targets]
    print(f"target ranks after attack (0 = most anomalous): {ranks}")

    # 6. Candidate sets: trade coverage for speed on larger graphs.
    #
    #    Every attack accepts ``candidates=`` restricting which pairs it may
    #    flip.  The strategies cover different slices of the pair space:
    #
    #    * "full"             — all n(n−1)/2 pairs.  Exact (bit-for-bit the
    #                           legacy behaviour) but quadratic; fine up to a
    #                           few thousand nodes.
    #    * "target_incident"  — only pairs touching a target (|C| = |T|·(n−1)
    #                           −|T|(|T|−1)/2).  The Nettack-style "direct"
    #                           restriction; linear in n, and with
    #                           GradMaxSearch each greedy step drops from
    #                           O(n³) to O(m + |C|) — 100×+ faster at
    #                           n = 2000 (see benchmarks/results/).
    #    * "two_hop"          — every pair inside the distance-≤2 ball of a
    #                           target.  Adds neighbour-neighbour flips that
    #                           reshape a target's egonet (what the OddBall
    #                           heuristic needs) but, unlike target_incident,
    #                           drops pairs joining a target to far-away
    #                           nodes — neither strategy contains the other,
    #                           and |C| grows with the ball size.
    #    * "adaptive"         — starts as exactly target_incident and GROWS
    #                           per step: every landed flip pulls its
    #                           endpoints into the ball, admitting their
    #                           incident pairs.  Reaches the neighbour-
    #                           neighbour flips two_hop covers, but only
    #                           around regions the optimiser actually
    #                           visits, keeping |C| near-linear.
    #
    #    Restricting candidates can only shrink the search space, so expect a
    #    (usually tiny) loss in attack strength in exchange for the speedup.
    fast = GradMaxSearch().attack(
        graph, targets, budget=8, candidates="target_incident"
    )
    print(
        f"candidate engine ({fast.metadata['candidate_count']} of "
        f"{graph.number_of_nodes * (graph.number_of_nodes - 1) // 2} pairs): "
        f"score decrease {fast.score_decrease(targets):.1%}"
    )

    #    Prebuilt CandidateSets can be shared across attacks and inspected:
    ball = CandidateSet.build("two_hop", graph, targets)
    print(
        f"two_hop candidate set: {len(ball)} pairs "
        f"({ball.density:.1%} of all pairs)"
    )

    # 7. Surrogate engines: every attack's optimisation loop runs through a
    #    pluggable SurrogateEngine (repro.oddball.surrogate) with two
    #    interchangeable backends:
    #
    #    * backend="dense"   — the full autograd pipeline.  Exact reference
    #                          (bit-for-bit the historical behaviour), but
    #                          O(n³) per forward pass and O(n²) memory.
    #    * backend="sparse"  — incremental egonet features with an
    #                          apply → score → rollback flip API and
    #                          closed-form gradients scattered onto the
    #                          candidate pairs only.  One BinarizedAttack
    #                          PGD iteration costs O(Σ deg + n + |C|)
    #                          instead of O(n³): a budget-5 attack on a
    #                          sparse 10,000-node graph finishes in well
    #                          under a second where the dense engine is
    #                          infeasible (see benchmarks/results/
    #                          BENCH_binarized_scaling.json).
    #    * backend="auto"    — the default: dense below 1500 nodes (keeps
    #                          the exact historical behaviour), sparse for
    #                          scipy-sparse inputs or larger graphs.  Sparse
    #                          inputs stay sparse end-to-end — through the
    #                          attack, the AttackResult and its poisoned()
    #                          graphs.
    #
    #    The backends agree on losses bit-for-bit and on gradients to
    #    round-off (the engine-parity suite in tests/ asserts it), so
    #    switching is a pure speed choice:
    fast_binarized = BinarizedAttack(iterations=100, backend="sparse")
    sparse_result = fast_binarized.attack(
        graph, targets, budget=8, candidates="target_incident"
    )
    print(
        f"sparse-engine BinarizedAttack: score decrease "
        f"{sparse_result.score_decrease(targets):.1%} "
        f"(backend={sparse_result.metadata['backend']})"
    )
    #    Paper figures can be regenerated at larger n the same way:
    #      python -m repro.experiments.runner --experiment fig4 --backend sparse
    #      python -m repro.experiments.runner --list

    # 8. Campaigns: batch many (targets × budgets × λ) jobs on ONE graph.
    #
    #    A bare attack() call rebuilds graph state per run; AttackCampaign
    #    shares one sparse engine across every job (retarget + rollback
    #    between jobs), records flips / losses / rank shifts / timings per
    #    job, and — given a checkpoint_path — resumes interrupted sweeps
    #    from the last completed job.  Flip sets are identical to
    #    independent attack() calls; on a sparse 10,000-node graph a
    #    50-target sweep runs ~7x faster than sequential runs
    #    (benchmarks/results/BENCH_campaign.json).
    from repro.attacks import AttackCampaign, grid_jobs

    jobs = grid_jobs(
        "gradmaxsearch",
        [[t] for t in targets],          # one job per target
        budgets=[8],
        candidates="target_incident",
    )
    sweep = AttackCampaign(graph).run(jobs)
    print(
        f"campaign: {len(sweep)} jobs in {sweep.seconds:.2f}s, "
        f"mean tau {sum(o.score_decrease for o in sweep) / len(sweep):.1%}"
    )

    # 9. Parallel campaigns: shard the job grid across worker processes.
    #
    #    ParallelCampaignExecutor gives every worker its own engine (rebuilt
    #    once from a pickled EngineSpec) and a shard of the job queue;
    #    results are bit-identical to the serial campaign, and checkpoints
    #    resume across different worker counts.  build_campaign() is the
    #    one-line switch:
    from repro.attacks import build_campaign

    parallel_sweep = build_campaign(graph, workers=2).run(jobs)
    assert [o.flips for o in parallel_sweep] == [o.flips for o in sweep]
    print(
        f"parallel campaign (2 workers): {len(parallel_sweep)} jobs, "
        "flips identical to the serial run"
    )
    #    See examples/campaign.py for the full multi-target λ-sweep
    #    walkthrough, --workers / --campaign-checkpoint on the experiment
    #    runner, and benchmarks/bench_parallel_campaign.py for scaling.


if __name__ == "__main__":
    main()

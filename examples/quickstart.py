"""Quickstart: detect anomalies with OddBall, then hide them with
BinarizedAttack.

Run:  python examples/quickstart.py
"""

from repro.attacks import BinarizedAttack
from repro.graph import load_dataset
from repro.oddball import OddBall


def main() -> None:
    # 1. Load a graph (a stand-in for the paper's Bitcoin-Alpha sample).
    dataset = load_dataset("bitcoin-alpha", rng=7, scale=0.25)
    graph = dataset.graph
    print(f"graph: {graph.number_of_nodes} nodes, {graph.number_of_edges} edges")

    # 2. Run the OddBall detector: egonet features + power-law regression.
    detector = OddBall()
    report = detector.analyze(graph)
    print(
        f"fitted Egonet Density Power Law: "
        f"lnE = {report.fit.beta0:.3f} + {report.fit.beta1:.3f} lnN"
    )

    # 3. The attacker picks the three most anomalous nodes as targets.
    targets = report.top_k(3).tolist()
    score_before = report.scores[targets].sum()
    print(f"targets {targets}: total AScore before attack = {score_before:.3f}")

    # 4. Poison the graph with BinarizedAttack (budget: 8 edge flips).
    attack = BinarizedAttack(iterations=100)
    result = attack.attack(graph, targets, budget=8)
    print(f"attack flipped {len(result.flips())} edges: {result.flips()}")

    # 5. The defender re-runs OddBall on the poisoned graph.
    score_after = detector.scores(result.poisoned())[targets].sum()
    tau = (score_before - score_after) / score_before
    print(f"total AScore after attack = {score_after:.3f}  (decrease {tau:.1%})")

    ranks = [OddBall().analyze(result.poisoned_graph()).rank_of(t) for t in targets]
    print(f"target ranks after attack (0 = most anomalous): {ranks}")


if __name__ == "__main__":
    main()

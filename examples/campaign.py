"""AttackCampaign walkthrough: a λ-sweep over 50 targets on one graph.

README-level summary
--------------------
The paper's experiments never run ONE attack — they sweep grids: many
targets × many budgets × the λ grid of BinarizedAttack, all against the
same clean graph.  Run naively, every ``attack()`` call pays the same
fixed costs again (adjacency validation, the O(n + m) sparse feature
build, candidate arrays, poisoned-graph materialisation for evaluation).

``AttackCampaign`` batches the whole grid onto one shared sparse surrogate
engine: between jobs it *retargets* (swap targets/candidates in O(|C|))
and *rolls back* the previous job's flips (O(deg) per flip) instead of
rebuilding anything.  Results are identical to independent runs — the
campaign is purely a performance layer — and a 50-target budget-5 sweep
on a sparse 10,000-node graph runs ~7× faster than sequential calls
(``benchmarks/results/BENCH_campaign.json``).

Campaigns are resumable: pass ``checkpoint_path`` and every completed job
is persisted; rerunning the same spec skips straight past them, so an
interrupted overnight sweep restarts from the last completed job.

Run:  python examples/campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.attacks import AttackCampaign, grid_jobs
from repro.graph import load_dataset
from repro.oddball import OddBall


def main() -> None:
    # 1. One clean graph, many anomalous targets.  (At this demo scale the
    #    graph is small; the campaign machinery is the same one that runs
    #    50-target sweeps on sparse 10k-node graphs.)
    dataset = load_dataset("bitcoin-alpha", rng=7, scale=0.5)
    graph = dataset.graph
    report = OddBall().analyze(graph)
    targets = report.top_k(12).tolist()
    print(f"graph: {graph.number_of_nodes} nodes, {graph.number_of_edges} edges")
    print(f"sweeping {len(targets)} targets")

    # 2. The job grid.  grid_jobs is the paper's sweep shape: per-target
    #    jobs × budgets × (optionally) a λ grid.  Here: every target gets
    #    a GradMax job plus one BinarizedAttack job per λ — the λ-sweep
    #    tells you how the LASSO pressure trades attack strength against
    #    sparsity on YOUR graph.
    budget = 6
    jobs = grid_jobs(
        "gradmaxsearch",
        [[t] for t in targets],
        budgets=[budget],
        candidates="target_incident",
    )
    jobs += grid_jobs(
        "binarizedattack",
        [[t] for t in targets],
        budgets=[budget],
        lambdas=[0.3, 0.1, 0.02],        # one job per λ
        candidates="target_incident",
        iterations=60,
    )
    print(f"job grid: {len(jobs)} jobs "
          f"({len(targets)} targets × (1 gradmax + 3 λ))")

    # 3. Run the whole grid on one shared engine — with a checkpoint, so
    #    an interrupted sweep would resume instead of restarting.
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = Path(scratch) / "campaign_checkpoint.json"
        campaign = AttackCampaign(graph, backend="sparse", checkpoint_path=checkpoint)
        sweep = campaign.run(jobs)
        print(f"completed {len(sweep)} jobs in {sweep.seconds:.2f}s "
              f"(resumed {sweep.resumed_jobs})")

        # Rerunning the same spec is free — everything replays from the
        # checkpoint.
        replay = AttackCampaign(
            graph, backend="sparse", checkpoint_path=checkpoint
        ).run(jobs)
        print(f"replay: {replay.resumed_jobs}/{len(replay)} jobs from checkpoint")

    # 4. Per-λ aggregation: mean flips spent and mean AScore decrease.
    #    Small λ → the LASSO barely bites → budgets get spent; large λ →
    #    sparse, conservative flip sets.
    print("\nλ-sweep summary (BinarizedAttack):")
    print(f"{'lambda':>8} {'mean flips':>11} {'mean tau':>9} {'mean burial':>12}")
    for lam in (0.3, 0.1, 0.02):
        outcomes = [
            o for o in sweep
            if o.job.attack == "binarizedattack"
            and dict(o.job.params)["lambdas"] == (lam,)
        ]
        flips = np.mean([len(o.flips) for o in outcomes])
        tau = np.mean([o.score_decrease for o in outcomes])
        burial = np.mean([
            shift for o in outcomes for shift in o.rank_shifts.values()
        ])
        print(f"{lam:>8} {flips:>11.1f} {tau:>9.1%} {burial:>12.1f}")

    gradmax = [o for o in sweep if o.job.attack == "gradmaxsearch"]
    print(f"\ngradmax baseline: mean tau "
          f"{np.mean([o.score_decrease for o in gradmax]):.1%}, "
          f"mean seconds/job {np.mean([o.seconds for o in gradmax]):.4f}")

    # 5. Every outcome reconstructs a full AttackResult when you need the
    #    budget-indexed artefacts (poisoned graphs, per-budget flips):
    best = max(sweep, key=lambda o: o.score_decrease)
    result = best.attack_result(graph.adjacency)
    print(f"\nbest job: {best.job.attack} on target {list(best.job.targets)} "
          f"(tau {best.score_decrease:.1%}, flips {result.flips()})")

    # 6. The same grid shards across worker processes (one engine per
    #    worker) with bit-identical results — the multiplier for Fig. 4-
    #    scale sweeps.  See benchmarks/bench_parallel_campaign.py and
    #    `python -m repro.experiments.runner --workers N`.
    from repro.attacks import ParallelCampaignExecutor

    parallel = ParallelCampaignExecutor(graph, workers=2, backend="sparse").run(jobs)
    assert [o.flips for o in parallel] == [o.flips for o in sweep]
    print(f"parallel executor (2 workers): {len(parallel)} jobs, "
          f"flips identical to the serial campaign")

    # 7. When no locality assumption is wanted (or the graph is too big
    #    for two-hop balls), the `block` strategy searches the WHOLE upper
    #    triangle through a seeded random block of `block_size` pairs —
    #    memory O(block_size) regardless of graph size, deterministic per
    #    seed (block_seed and block_size are content-hashed into each
    #    job_id, so checkpoints resume the exact same blocks).  This is
    #    the strategy that runs the gradient attacks on the full
    #    88.8k-node store graph: benchmarks/results/BENCH_prbcd.json.
    block_jobs = grid_jobs(
        "gradmaxsearch",
        [[t] for t in targets],
        budgets=[budget],
        candidates="block",
        block_size=4096,
        block_seed=1,
    )
    block_sweep = AttackCampaign(graph, backend="sparse").run(block_jobs)
    block_tau = np.mean([o.score_decrease for o in block_sweep])
    print(f"\nblock candidates (4096 pairs, whole triangle): "
          f"mean tau {block_tau:.1%} vs "
          f"{np.mean([o.score_decrease for o in gradmax]):.1%} "
          f"for target_incident")

    # 8. Any run can be traced: pass telemetry= (or set REPRO_TELEMETRY,
    #    or --telemetry on the CLIs) and every layer writes spans, events
    #    and kernel counters to per-worker JSONL sinks — with results
    #    bit-identical to the untraced run.  Inspect the merged trace
    #    with `python -m repro.telemetry report <dir>` (add --chrome for
    #    a chrome://tracing timeline).
    from repro import telemetry
    from repro.telemetry.report import render_report, summarize

    with tempfile.TemporaryDirectory() as trace_dir:
        traced = AttackCampaign(
            graph, backend="sparse", telemetry=trace_dir
        ).run(jobs)
        telemetry.shutdown()
        assert [o.flips for o in traced] == [o.flips for o in sweep]
        summary = summarize(telemetry.load_trace_dir(trace_dir))
        print(f"\ntraced campaign: {summary['spans']} spans, "
              f"flips identical to the untraced run")
        print(render_report(summary, top=3))


if __name__ == "__main__":
    main()

"""Unequal target importances (the κ-weighted objective of Section IV-B).

The paper evaluates only κ ≡ 1, noting the methods "can be easily extended
to the case with unequal weights".  This example exercises that extension:
a VIP target gets 100× the weight of two decoys, and the attack concentrates
its budget accordingly.

Run:  python examples/weighted_targets.py
"""


from repro.attacks import BinarizedAttack
from repro.graph import load_dataset
from repro.oddball import OddBall, anomaly_scores


def main() -> None:
    dataset = load_dataset("wikivote", rng=7, scale=0.25)
    graph = dataset.graph
    report = OddBall().analyze(graph)
    targets = report.top_k(3).tolist()
    vip, *decoys = targets
    print(f"targets: VIP = v{vip}, decoys = {decoys}")

    budget = 8
    attack = BinarizedAttack(iterations=100)
    before = anomaly_scores(graph.adjacency)

    for label, weights in (
        ("uniform kappa", [1.0, 1.0, 1.0]),
        ("VIP kappa=100", [100.0, 1.0, 1.0]),
    ):
        result = attack.attack(graph, targets, budget, target_weights=weights)
        after = anomaly_scores(result.poisoned())
        drops = {t: before[t] - after[t] for t in targets}
        vip_share = drops[vip] / max(sum(drops.values()), 1e-9)
        print(f"\n{label}: flips = {len(result.flips())}")
        for t in targets:
            marker = " <- VIP" if t == vip else ""
            print(f"  v{t}: AScore {before[t]:6.2f} -> {after[t]:6.2f}{marker}")
        print(f"  VIP's share of total score reduction: {vip_share:.0%}")


if __name__ == "__main__":
    main()
